// Unit tests for the batcher: size- and deadline-triggered flushes
// (driven by a FakeClock, so deadline behaviour is deterministic, not
// sleep-calibrated), bounded-queue rejection with untouched state,
// drain-on-Close, the zero-allocation enqueue hot path, and the
// consistency invariants of the metrics snapshot under concurrency.
package batch_test

import (
	"context"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"parsum"
	"parsum/internal/batch"
	"parsum/internal/oracle"
	"parsum/internal/shard"
)

// recSink records every sink call. It implements only Sink (not
// SliceSink), so multi-request flushes exercise the concatenation path.
type recSink struct {
	mu    sync.Mutex
	adds  []float64
	subs  []float64
	calls [][]float64 // every AddBatch/SubBatch payload, in call order

	gate    chan struct{} // when non-nil, every call waits until it is closed
	entered chan struct{} // when non-nil, every call signals here first
}

func (r *recSink) apply(xs []float64, sub bool) {
	if r.entered != nil {
		r.entered <- struct{}{}
	}
	if r.gate != nil {
		<-r.gate
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	cp := append([]float64(nil), xs...)
	r.calls = append(r.calls, cp)
	if sub {
		r.subs = append(r.subs, cp...)
	} else {
		r.adds = append(r.adds, cp...)
	}
}

func (r *recSink) AddBatch(xs []float64) { r.apply(xs, false) }
func (r *recSink) SubBatch(xs []float64) { r.apply(xs, true) }

func (r *recSink) snapshot() (adds, subs []float64, calls int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]float64(nil), r.adds...), append([]float64(nil), r.subs...), len(r.calls)
}

// waitFor polls cond until it holds or the test deadline budget burns.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

func seq(lo, n int) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = float64(lo + i)
	}
	return xs
}

// TestSizeFlushCoalesces proves the size trigger: with the clock frozen
// (no deadline can ever fire), four concurrent 2-value requests must
// coalesce into exactly one 8-value flush when MaxBatch is 8 — and
// every Add returns only after that flush completed (group commit).
func TestSizeFlushCoalesces(t *testing.T) {
	sink := &recSink{}
	clk := batch.NewFakeClock()
	b := batch.New(sink, batch.Options{QueueLen: 16, MaxBatch: 8, MaxDelay: time.Hour, Clock: clk})
	defer b.Close()

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := b.Add(context.Background(), seq(10*i, 2)); err != nil {
				t.Errorf("Add: %v", err)
			}
		}(i)
	}
	wg.Wait()

	adds, _, calls := sink.snapshot()
	if calls != 1 || len(adds) != 8 {
		t.Fatalf("got %d sink calls with %d total values, want 1 call with 8", calls, len(adds))
	}
	m := b.Metrics()
	if m.SizeFlushes != 1 || m.DeadlineFlushes != 0 || m.Flushes != 1 {
		t.Fatalf("flush causes: %+v, want exactly one size flush", m)
	}
	if m.FlushedRequests != 4 || m.FlushedValues != 8 || m.QueueDepth != 0 {
		t.Fatalf("flush counters inconsistent: %+v", m)
	}
}

// TestDeadlineFlushFakeClock proves the latency budget: a request
// smaller than MaxBatch sits until the fake clock passes MaxDelay, then
// flushes with cause=deadline. No sleeping, no flakiness: the test owns
// time.
func TestDeadlineFlushFakeClock(t *testing.T) {
	sink := &recSink{}
	clk := batch.NewFakeClock()
	b := batch.New(sink, batch.Options{QueueLen: 4, MaxBatch: 1 << 20, MaxDelay: 2 * time.Millisecond, Clock: clk})
	defer b.Close()

	errc := make(chan error, 1)
	go func() { errc <- b.Add(context.Background(), seq(0, 3)) }()

	clk.BlockUntilArmed(1)
	if _, _, calls := sink.snapshot(); calls != 0 {
		t.Fatal("flush happened before the deadline expired")
	}
	clk.Advance(2 * time.Millisecond)
	if err := <-errc; err != nil {
		t.Fatalf("Add: %v", err)
	}
	adds, _, calls := sink.snapshot()
	if calls != 1 || len(adds) != 3 {
		t.Fatalf("got %d calls with %d values, want 1 with 3", calls, len(adds))
	}
	if m := b.Metrics(); m.DeadlineFlushes != 1 || m.SizeFlushes != 0 {
		t.Fatalf("want exactly one deadline flush, got %+v", m)
	}
}

// TestDeadlineFlushesFireInOrder drives two full deadline cycles and
// asserts the sink saw the groups in submission order: the MaxDelay set
// by the older group expires first.
func TestDeadlineFlushesFireInOrder(t *testing.T) {
	sink := &recSink{}
	clk := batch.NewFakeClock()
	b := batch.New(sink, batch.Options{QueueLen: 4, MaxBatch: 1 << 20, MaxDelay: time.Millisecond, Clock: clk})
	defer b.Close()

	for round, vals := range [][]float64{seq(100, 2), seq(200, 2)} {
		errc := make(chan error, 1)
		vals := vals
		go func() { errc <- b.Add(context.Background(), vals) }()
		clk.BlockUntilArmed(1)
		clk.Advance(time.Millisecond)
		if err := <-errc; err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	_, _, calls := sink.snapshot()
	if calls != 2 {
		t.Fatalf("got %d sink calls, want 2", calls)
	}
	sink.mu.Lock()
	first, second := sink.calls[0][0], sink.calls[1][0]
	sink.mu.Unlock()
	if first != 100 || second != 200 {
		t.Fatalf("deadline flushes out of order: first=%v second=%v", first, second)
	}
	if m := b.Metrics(); m.DeadlineFlushes != 2 {
		t.Fatalf("want 2 deadline flushes, got %+v", m)
	}
}

// TestRejectLeavesStateUntouched fills the bounded queue behind a
// blocked sink and asserts the overflowing request fails fast with
// ErrQueueFull, mutates nothing, and is invisible to the sink forever —
// the exactness half of the 429 contract.
func TestRejectLeavesStateUntouched(t *testing.T) {
	gate := make(chan struct{})
	sink := &recSink{gate: gate, entered: make(chan struct{}, 16)}
	clk := batch.NewFakeClock()
	b := batch.New(sink, batch.Options{QueueLen: 2, MaxBatch: 1, MaxDelay: time.Hour, Clock: clk})
	defer b.Close()

	ctx := context.Background()
	results := make(chan error, 3)
	go func() { results <- b.Add(ctx, []float64{1}) }()
	<-sink.entered // flusher is now blocked inside the sink holding request 1

	go func() { results <- b.Add(ctx, []float64{2}) }()
	go func() { results <- b.Add(ctx, []float64{3}) }()
	// Depth 3: request 1 is admitted-but-unflushed (the sink is holding
	// its flush open) and requests 2 and 3 fill the two queue slots.
	waitFor(t, "queue to fill", func() bool { return b.Metrics().QueueDepth == 3 })

	before := b.Metrics()
	err := b.Add(ctx, []float64{4})
	if err != batch.ErrQueueFull {
		t.Fatalf("overflow Add: got %v, want ErrQueueFull", err)
	}
	after := b.Metrics()
	if after.Rejected != before.Rejected+1 {
		t.Fatalf("Rejected: got %d, want %d", after.Rejected, before.Rejected+1)
	}
	if after.Enqueued != before.Enqueued || after.EnqueuedValues != before.EnqueuedValues || after.QueueDepth != before.QueueDepth {
		t.Fatalf("rejection mutated admission state: before %+v after %+v", before, after)
	}

	close(gate) // release the sink; everything admitted must complete
	for i := 0; i < 3; i++ {
		if err := <-results; err != nil {
			t.Fatalf("admitted Add failed: %v", err)
		}
	}
	waitFor(t, "drain", func() bool { return b.Metrics().QueueDepth == 0 })
	adds, _, _ := sink.snapshot()
	sum := 0.0
	for _, v := range adds {
		sum += v
	}
	if len(adds) != 3 || sum != 6 {
		t.Fatalf("sink saw %v, want exactly the admitted values {1,2,3}", adds)
	}
}

// TestSubSplitsFromAdds mixes insertions and deletions in one flush
// group and asserts the batcher routes them to the right sink calls.
func TestSubSplitsFromAdds(t *testing.T) {
	sink := &recSink{}
	clk := batch.NewFakeClock()
	b := batch.New(sink, batch.Options{QueueLen: 16, MaxBatch: 6, MaxDelay: time.Hour, Clock: clk})
	defer b.Close()

	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(2)
		go func(i int) { defer wg.Done(); _ = b.Add(context.Background(), []float64{float64(i)}) }(i)
		go func(i int) { defer wg.Done(); _ = b.Sub(context.Background(), []float64{float64(10 + i)}) }(i)
	}
	wg.Wait()
	adds, subs, _ := sink.snapshot()
	if len(adds) != 3 || len(subs) != 3 {
		t.Fatalf("adds=%v subs=%v, want 3 each", adds, subs)
	}
	for _, v := range subs {
		if v < 10 {
			t.Fatalf("add value %v leaked into the sub stream", v)
		}
	}
}

// sliceSink records AddBatches/SubBatches groups, proving the batcher
// prefers the zero-copy SliceSink path when the sink offers it.
type sliceSink struct {
	recSink
	groups [][]int // lengths of the slices in each AddBatches call
}

func (s *sliceSink) AddBatches(batches [][]float64) {
	var lens []int
	for _, xs := range batches {
		lens = append(lens, len(xs))
		s.recSink.AddBatch(xs)
	}
	s.mu.Lock()
	s.groups = append(s.groups, lens)
	s.mu.Unlock()
}

func (s *sliceSink) SubBatches(batches [][]float64) {
	for _, xs := range batches {
		s.recSink.SubBatch(xs)
	}
}

// TestSliceSinkZeroCopyPath checks a multi-request flush arrives as one
// AddBatches call carrying the request slices unconcatenated.
func TestSliceSinkZeroCopyPath(t *testing.T) {
	sink := &sliceSink{}
	clk := batch.NewFakeClock()
	b := batch.New(sink, batch.Options{QueueLen: 16, MaxBatch: 4, MaxDelay: time.Hour, Clock: clk})
	defer b.Close()

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) { defer wg.Done(); _ = b.Add(context.Background(), seq(10*i, 2)) }(i)
	}
	wg.Wait()
	sink.mu.Lock()
	groups := sink.groups
	sink.mu.Unlock()
	if len(groups) != 1 || len(groups[0]) != 2 || groups[0][0] != 2 || groups[0][1] != 2 {
		t.Fatalf("want one AddBatches group of two 2-value slices, got %v", groups)
	}
}

// TestCloseDrainsEverythingAdmitted parks many requests behind a frozen
// clock and a huge MaxBatch, then closes: every admitted request must
// complete with nil (its values applied) and post-Close submissions must
// fail with ErrClosed.
func TestCloseDrainsEverythingAdmitted(t *testing.T) {
	sink := &recSink{}
	clk := batch.NewFakeClock()
	b := batch.New(sink, batch.Options{QueueLen: 64, MaxBatch: 1 << 20, MaxDelay: time.Hour, Clock: clk})

	const reqs = 32
	var wg sync.WaitGroup
	errs := make([]error, reqs)
	for i := 0; i < reqs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = b.Add(context.Background(), seq(i, 1))
		}(i)
	}
	waitFor(t, "all requests admitted", func() bool { return b.Metrics().Enqueued == reqs })
	b.Close()
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("admitted request %d got %v after Close, want nil", i, err)
		}
	}
	adds, _, _ := sink.snapshot()
	if len(adds) != reqs {
		t.Fatalf("sink saw %d values, want %d", len(adds), reqs)
	}
	m := b.Metrics()
	if m.DrainFlushes == 0 || m.QueueDepth != 0 || m.FlushedRequests != reqs {
		t.Fatalf("drain metrics inconsistent: %+v", m)
	}
	if err := b.Add(context.Background(), []float64{1}); err != batch.ErrClosed {
		t.Fatalf("post-Close Add: got %v, want ErrClosed", err)
	}
	// Close is idempotent.
	b.Close()
}

// TestEmptyBatchIsNoOp: zero-length submissions complete immediately
// without touching the queue or the sink.
func TestEmptyBatchIsNoOp(t *testing.T) {
	sink := &recSink{}
	b := batch.New(sink, batch.Options{})
	defer b.Close()
	if err := b.Add(context.Background(), nil); err != nil {
		t.Fatalf("empty Add: %v", err)
	}
	if m := b.Metrics(); m.Enqueued != 0 {
		t.Fatalf("empty Add was enqueued: %+v", m)
	}
}

// TestSubmitZeroAlloc asserts the steady-state request path — enqueue,
// flush hand-off, reply — allocates nothing: items and their reply
// channels recycle through a pool, and the single-request flush path
// hands the caller's slice straight to the sink.
func TestSubmitZeroAlloc(t *testing.T) {
	var total float64
	sink := sinkFunc(func(xs []float64) {
		for _, v := range xs {
			total += v
		}
	})
	b := batch.New(sink, batch.Options{QueueLen: 8, MaxBatch: 1, MaxDelay: time.Millisecond})
	defer b.Close()
	ctx := context.Background()
	xs := []float64{1, 2, 3, 4}
	for i := 0; i < 100; i++ { // warm the pools
		if err := b.Add(ctx, xs); err != nil {
			t.Fatal(err)
		}
	}
	best := math.Inf(1)
	for try := 0; try < 3 && best > 0; try++ {
		best = math.Min(best, testing.AllocsPerRun(200, func() {
			if err := b.Add(ctx, xs); err != nil {
				t.Fatal(err)
			}
		}))
	}
	if best > 0 {
		t.Fatalf("submit path allocates %.2f objects per request, want 0", best)
	}
	_ = total
}

// sinkFunc adapts a function to Sink (adds only; subs are a test bug).
type sinkFunc func(xs []float64)

func (f sinkFunc) AddBatch(xs []float64) { f(xs) }
func (f sinkFunc) SubBatch(xs []float64) { panic("unexpected SubBatch") }

// TestMetricsInvariantsUnderLoad hammers the batcher from several
// goroutines while a reader takes snapshots, asserting on every single
// snapshot the invariants documented on Metrics. Under -race this is
// also the torn-counter regression test: with per-field atomics a
// snapshot could observe flushes ahead of enqueues.
func TestMetricsInvariantsUnderLoad(t *testing.T) {
	s, err := shard.New(shard.Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	b := batch.New(s, batch.Options{QueueLen: 8, MaxBatch: 64, MaxDelay: 200 * time.Microsecond, Flushers: 2})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(g)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				xs := make([]float64, 1+r.Intn(8))
				for i := range xs {
					xs[i] = r.NormFloat64()
				}
				err := b.Add(context.Background(), xs)
				if err != nil && err != batch.ErrQueueFull {
					t.Errorf("Add: %v", err)
					return
				}
			}
		}(g)
	}

	deadline := time.Now().Add(100 * time.Millisecond)
	for time.Now().Before(deadline) {
		m := b.Metrics()
		if m.FlushedRequests > m.Enqueued {
			t.Fatalf("snapshot shows more flushed requests (%d) than enqueued (%d)", m.FlushedRequests, m.Enqueued)
		}
		if m.FlushedValues > m.EnqueuedValues {
			t.Fatalf("snapshot shows more flushed values (%d) than enqueued (%d)", m.FlushedValues, m.EnqueuedValues)
		}
		if got := m.Enqueued - m.FlushedRequests; m.QueueDepth != got || m.QueueDepth < 0 {
			t.Fatalf("QueueDepth %d != Enqueued-FlushedRequests %d", m.QueueDepth, got)
		}
		if m.SizeFlushes+m.DeadlineFlushes+m.DrainFlushes != m.Flushes {
			t.Fatalf("flush causes don't sum: %+v", m)
		}
		var hist int64
		for _, c := range m.SizeHist {
			hist += c
		}
		if hist != m.Flushes {
			t.Fatalf("size histogram total %d != flushes %d", hist, m.Flushes)
		}
	}
	close(stop)
	wg.Wait()
	b.Close()
}

// TestConcurrentSnapshotsNeverDropOrDoubleCount races flushes against
// sink snapshots: Sum() may observe any admitted prefix mid-run, but
// once the batcher is closed the final sum must be bit-identical to
// parsum.Sum over exactly the accepted multiset — nothing dropped,
// nothing applied twice.
func TestConcurrentSnapshotsNeverDropOrDoubleCount(t *testing.T) {
	s, err := shard.New(shard.Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	b := batch.New(s, batch.Options{QueueLen: 4, MaxBatch: 32, MaxDelay: 100 * time.Microsecond, Flushers: 2})

	const workers, perWorker = 4, 200
	accepted := make([][]float64, workers)
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(100 + g)))
			for i := 0; i < perWorker; i++ {
				xs := make([]float64, 1+r.Intn(6))
				for j := range xs {
					xs[j] = math.Ldexp(r.Float64()-0.5, r.Intn(40)-20)
				}
				for {
					err := b.Add(context.Background(), xs)
					if err == nil {
						accepted[g] = append(accepted[g], xs...)
						break
					}
					if err != batch.ErrQueueFull {
						t.Errorf("Add: %v", err)
						return
					}
					time.Sleep(20 * time.Microsecond)
				}
			}
		}(g)
	}
	snapDone := make(chan struct{})
	go func() {
		defer close(snapDone)
		for i := 0; i < 50; i++ {
			_ = s.Sum() // must race cleanly with flushes
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()
	b.Close()
	<-snapDone

	var all []float64
	for _, a := range accepted {
		all = append(all, a...)
	}
	want := parsum.Sum(all)
	got := s.Sum()
	if math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("final sum %g (%x) != parsum.Sum over accepted multiset %g (%x)",
			got, math.Float64bits(got), want, math.Float64bits(want))
	}
	if !oracle.Faithful(all, got) {
		t.Fatalf("final sum %g is not even faithful for the accepted multiset", got)
	}
}

// TestContextAbandonStillApplies: a caller that gives up waiting gets
// ctx.Err(), but its admitted batch is still applied exactly once.
func TestContextAbandonStillApplies(t *testing.T) {
	sink := &recSink{}
	clk := batch.NewFakeClock()
	b := batch.New(sink, batch.Options{QueueLen: 4, MaxBatch: 1 << 20, MaxDelay: time.Millisecond, Clock: clk})
	defer b.Close()

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- b.Add(ctx, []float64{42}) }()
	waitFor(t, "admission", func() bool { return b.Metrics().Enqueued == 1 })
	cancel()
	if err := <-errc; err != context.Canceled {
		t.Fatalf("abandoned Add: got %v, want context.Canceled", err)
	}
	clk.BlockUntilArmed(1)
	clk.Advance(time.Millisecond)
	waitFor(t, "abandoned batch to flush", func() bool {
		_, _, calls := sink.snapshot()
		return calls == 1
	})
	adds, _, _ := sink.snapshot()
	if len(adds) != 1 || adds[0] != 42 {
		t.Fatalf("abandoned batch not applied exactly once: %v", adds)
	}
}
