package oracle

import (
	"math"
	"math/big"
	"testing"
)

func TestSumBasics(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{1, 2, 3}, 6},
		{[]float64{1e100, 1, -1e100}, 1},
		{[]float64{math.MaxFloat64, math.MaxFloat64}, math.Inf(1)},
		{[]float64{math.Inf(1), 1}, math.Inf(1)},
		{[]float64{math.Inf(-1), 1}, math.Inf(-1)},
	}
	for _, c := range cases {
		if got := Sum(c.xs); got != c.want {
			t.Errorf("Sum(%v) = %g, want %g", c.xs, got, c.want)
		}
	}
	if !math.IsNaN(Sum([]float64{math.NaN()})) {
		t.Error("NaN input must give NaN")
	}
	if !math.IsNaN(Sum([]float64{math.Inf(1), math.Inf(-1)})) {
		t.Error("opposing infinities must give NaN")
	}
}

func TestRoundDirDirectedRounding(t *testing.T) {
	// A value strictly between two adjacent floats: directed roundings
	// must bracket it. (math/big's Float64 ignores the rounding mode, so
	// roundDir derives direction from the conversion accuracy — this test
	// pins that behaviour.)
	for _, base := range []float64{1.0, -1.0, 0x1p-1050, -0x1p-1050, 0x1.fffffffffffffp1023 / 2} {
		up := math.Nextafter(base, math.Inf(1))
		mid := new(big.Float).SetPrec(200).SetFloat64(base)
		half := new(big.Float).SetPrec(200).SetFloat64(up)
		half.Sub(half, mid)
		half.Mul(half, big.NewFloat(0.25))
		mid.Add(mid, half) // base + quarter-gap
		lo := roundDir(mid, big.ToNegativeInf)
		hi := roundDir(mid, big.ToPositiveInf)
		if lo != base || hi != up {
			t.Errorf("base=%g: roundDir gave [%g, %g], want [%g, %g]", base, lo, hi, base, up)
		}
	}
	// Exact values round to themselves in both directions.
	s := new(big.Float).SetPrec(200).SetFloat64(1.5)
	if roundDir(s, big.ToNegativeInf) != 1.5 || roundDir(s, big.ToPositiveInf) != 1.5 {
		t.Error("exact value must round to itself")
	}
	// Beyond MaxFloat64: RD gives MaxFloat64, RU gives +Inf.
	huge := new(big.Float).SetPrec(200).SetFloat64(math.MaxFloat64)
	huge.Add(huge, big.NewFloat(1e300))
	if got := roundDir(huge, big.ToNegativeInf); got != math.MaxFloat64 {
		t.Errorf("RD(huge) = %g", got)
	}
	if got := roundDir(huge, big.ToPositiveInf); !math.IsInf(got, 1) {
		t.Errorf("RU(huge) = %g", got)
	}
}

func TestFaithful(t *testing.T) {
	// Exact sum 1 + 2^-60: both 1 and nextUp(1) are faithful; nothing else.
	xs := []float64{1, 0x1p-60}
	if !Faithful(xs, 1) {
		t.Error("RD must be faithful")
	}
	if !Faithful(xs, math.Nextafter(1, 2)) {
		t.Error("RU must be faithful")
	}
	if Faithful(xs, math.Nextafter(1, 0)) {
		t.Error("one below RD is not faithful")
	}
	if Faithful(xs, math.Nextafter(math.Nextafter(1, 2), 2)) {
		t.Error("one above RU is not faithful")
	}
	// Exactly representable sums admit only themselves.
	if !Faithful([]float64{1, 1}, 2) || Faithful([]float64{1, 1}, math.Nextafter(2, 3)) {
		t.Error("exact sum faithfulness wrong")
	}
	// The regression that motivated roundDir's fix: a negative exact sum
	// just above the midpoint; RN is the upper neighbor but the lower one
	// is still faithful.
	a := -math.Ldexp(6142060676454003, 946)
	b := math.Nextafter(a, math.Inf(1))
	gap := new(big.Float).SetPrec(300).SetFloat64(b)
	gap.Sub(gap, new(big.Float).SetPrec(300).SetFloat64(a))
	gap.Mul(gap, big.NewFloat(0.5001))
	s := new(big.Float).SetPrec(300).SetFloat64(a)
	s.Add(s, gap)
	lo := roundDir(s, big.ToNegativeInf)
	hi := roundDir(s, big.ToPositiveInf)
	if lo != a || hi != b {
		t.Fatalf("directed roundings [%g,%g] do not bracket: want [%g,%g]", lo, hi, a, b)
	}
	// NaN / infinity conventions.
	if !Faithful([]float64{math.NaN()}, math.NaN()) {
		t.Error("NaN sum, NaN result must be faithful")
	}
	if !Faithful([]float64{math.MaxFloat64, math.MaxFloat64}, math.Inf(1)) {
		t.Error("overflowed sum must accept +Inf")
	}
	if !Faithful(nil, 0) {
		t.Error("empty sum, zero result")
	}
}

func TestCondNumber(t *testing.T) {
	if got := CondNumber([]float64{1, 2, 3}); got != 1 {
		t.Errorf("positive data: C=%g, want 1", got)
	}
	if got := CondNumber([]float64{1, -1}); !math.IsInf(got, 1) {
		t.Errorf("zero sum: C=%g, want +Inf", got)
	}
	if got := CondNumber(nil); got != 1 {
		t.Errorf("empty: C=%g, want 1", got)
	}
	if got := CondNumber([]float64{1e100, 1, -1e100}); math.Abs(got-2e100) > 1e85 {
		t.Errorf("cancellation: C=%g, want ≈2e100", got)
	}
	if !math.IsNaN(CondNumber([]float64{math.NaN()})) {
		t.Error("NaN input: want NaN")
	}
}

func TestAbsSum(t *testing.T) {
	if got := AbsSum([]float64{-1, 2, -3}); got != 6 {
		t.Errorf("AbsSum = %g, want 6", got)
	}
	if got := AbsSum([]float64{math.Inf(-1)}); !math.IsInf(got, 1) {
		t.Errorf("AbsSum(−Inf) = %g, want +Inf", got)
	}
}
