// Package oracle provides an exact reference implementation of
// floating-point summation built on math/big, used by the test suites to
// verify every production representation and algorithm. It is deliberately
// slow and obviously correct.
package oracle

import (
	"math"
	"math/big"
)

// prec is enough precision to represent any sum of up to 2^60 doubles
// exactly: the double bit range spans 2098 bits, plus 64 bits of headroom.
const prec = 2200

// SumBig returns the exact sum of xs as a big.Float (nil if the sum
// involves NaN or opposing infinities — i.e. is not a real number).
// A single-signed infinity yields a big.Float infinity.
func SumBig(xs []float64) *big.Float {
	s := new(big.Float).SetPrec(prec)
	var posInf, negInf bool
	for _, x := range xs {
		if math.IsNaN(x) {
			return nil
		}
		if math.IsInf(x, 1) {
			posInf = true
			continue
		}
		if math.IsInf(x, -1) {
			negInf = true
			continue
		}
		s.Add(s, new(big.Float).SetPrec(prec).SetFloat64(x))
	}
	if posInf && negInf {
		return nil
	}
	if posInf {
		return new(big.Float).SetInf(false)
	}
	if negInf {
		return new(big.Float).SetInf(true)
	}
	return s
}

// Sum returns the correctly rounded (round-to-nearest-even) float64 sum of
// xs, with IEEE semantics for NaN and infinities.
func Sum(xs []float64) float64 {
	s := SumBig(xs)
	if s == nil {
		return math.NaN()
	}
	f, _ := s.Float64()
	return f
}

// AbsSum returns the correctly rounded float64 value of Σ|xᵢ| (NaN if any
// input is NaN).
func AbsSum(xs []float64) float64 {
	s := new(big.Float).SetPrec(prec)
	for _, x := range xs {
		if math.IsNaN(x) {
			return math.NaN()
		}
		if math.IsInf(x, 0) {
			return math.Inf(1)
		}
		s.Add(s, new(big.Float).SetPrec(prec).SetFloat64(math.Abs(x)))
	}
	f, _ := s.Float64()
	return f
}

// Faithful reports whether got is a faithful rounding of the exact sum of
// xs: either the largest float64 ≤ the exact sum or the smallest float64 ≥
// it. (The correctly rounded value is always faithful.)
func Faithful(xs []float64, got float64) bool {
	s := SumBig(xs)
	if s == nil {
		return math.IsNaN(got)
	}
	if s.IsInf() {
		return math.IsInf(got, map[bool]int{false: 1, true: -1}[s.Signbit()])
	}
	lo := roundDir(s, big.ToNegativeInf)
	hi := roundDir(s, big.ToPositiveInf)
	if got == 0 {
		// Treat ±0 as interchangeable for faithfulness.
		return lo == 0 || hi == 0
	}
	return got == lo || got == hi
}

// roundDir rounds s to float64 toward the given direction. big.Float's
// Float64 conversion always rounds to nearest regardless of the receiver's
// mode, so directed rounding is derived from the conversion's Accuracy:
// if the nearest float lies on the wrong side of s, step one ulp back.
// This is also correct in the subnormal range and at ±MaxFloat64 (where
// stepping back from ±Inf yields the largest finite float).
func roundDir(s *big.Float, mode big.RoundingMode) float64 {
	f, acc := s.Float64()
	switch mode {
	case big.ToNegativeInf:
		if acc == big.Above { // f > s: step down
			return math.Nextafter(f, math.Inf(-1))
		}
	case big.ToPositiveInf:
		if acc == big.Below { // f < s: step up
			return math.Nextafter(f, math.Inf(1))
		}
	}
	return f
}

// CondNumber returns the condition number C(X) = Σ|xᵢ| / |Σxᵢ| as a
// float64, +Inf for a zero sum of a nonzero input, and 1 for empty input.
func CondNumber(xs []float64) float64 {
	num := new(big.Float).SetPrec(prec)
	den := SumBig(xs)
	if den == nil || den.IsInf() {
		return math.NaN()
	}
	for _, x := range xs {
		num.Add(num, new(big.Float).SetPrec(prec).SetFloat64(math.Abs(x)))
	}
	if num.Sign() == 0 {
		return 1
	}
	if den.Sign() == 0 {
		return math.Inf(1)
	}
	q := new(big.Float).SetPrec(prec).Quo(num, new(big.Float).Abs(den))
	f, _ := q.Float64()
	return f
}
