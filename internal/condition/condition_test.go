package condition

import (
	"math"
	"testing"
)

func TestNumber(t *testing.T) {
	cases := []struct {
		name string
		xs   []float64
		want float64
	}{
		{"empty", nil, 1},
		{"all-zero", []float64{0, 0, math.Copysign(0, -1)}, 1},
		{"single", []float64{2}, 1},
		{"same-sign", []float64{1, 2, 3}, 1},
		{"mixed-mild", []float64{3, -1}, 2},
		{"exact-cancellation", []float64{1e300, -1e300}, math.Inf(1)},
		{"nan-input", []float64{1, math.NaN()}, math.NaN()},
		{"inf-input", []float64{math.Inf(1), 1}, math.NaN()},
		{"neg-inf-input", []float64{math.Inf(-1)}, math.NaN()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := Number(tc.xs)
			if math.IsNaN(tc.want) {
				if !math.IsNaN(got) {
					t.Fatalf("Number=%g, want NaN", got)
				}
				return
			}
			if got != tc.want {
				t.Fatalf("Number=%g, want %g", got, tc.want)
			}
		})
	}
}

// TestNumberExactCancellationResidual: the definition is computed from
// exact sums, so a residual one ulp above total cancellation must produce
// a huge-but-finite condition number, not Inf — the case naive float
// division of naive float sums gets wrong.
func TestNumberExactCancellationResidual(t *testing.T) {
	xs := []float64{1e100, 1, -1e100}
	got := Number(xs)
	if math.IsInf(got, 0) || math.IsNaN(got) {
		t.Fatalf("Number=%v, want finite", got)
	}
	// Σ|x| = 2e100+1 rounds to 2e100; Σx = 1 exactly.
	if want := 2e100; got != want {
		t.Fatalf("Number=%g, want %g", got, want)
	}
}

func TestParts(t *testing.T) {
	abs, sum := Parts([]float64{1.5, -2.25, 0.25})
	if abs != 4.0 {
		t.Errorf("Σ|x|=%g, want 4", abs)
	}
	if sum != -0.5 {
		t.Errorf("Σx=%g, want -0.5", sum)
	}
	// Parts must be exact, not merely accurate: a sum that naive
	// accumulation gets wrong by an ulp.
	abs, sum = Parts([]float64{1, 0x1p-53, 0x1p-53})
	if want := 1 + 0x1p-52; sum != want {
		t.Errorf("exact Σx=%g, want %g", sum, want)
	}
	if abs != sum {
		t.Errorf("Σ|x|=%g should equal Σx=%g for positive input", abs, sum)
	}
}

func TestLog2(t *testing.T) {
	if got := Log2(nil); got != 0 {
		t.Errorf("Log2(empty)=%g, want 0 (clamped)", got)
	}
	if got := Log2([]float64{1, 1}); got != 0 {
		t.Errorf("Log2(well-conditioned)=%g, want 0", got)
	}
	if got := Log2([]float64{1e300, -1e300}); !math.IsInf(got, 1) {
		t.Errorf("Log2(cancelling)=%g, want +Inf", got)
	}
	if got := Log2([]float64{math.NaN()}); !math.IsNaN(got) {
		t.Errorf("Log2(NaN)=%g, want NaN", got)
	}
	// C = 2^100 exactly: log2 must be exactly 100.
	xs := []float64{0x1p100, -(0x1p100 - 0x1p48), 0 /* Σ = 2^48, Σ|x| = 2^101-2^48 */}
	c := Number(xs)
	if got := Log2(xs); math.Abs(got-math.Log2(c)) > 1e-12 {
		t.Errorf("Log2=%g, want log2(%g)=%g", got, c, math.Log2(c))
	}
}
