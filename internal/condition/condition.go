// Package condition computes the condition number of a summation problem,
//
//	C(X) = Σ|xᵢ| / |Σxᵢ|,
//
// exactly (both sums are accumulated in superaccumulators and rounded
// once). The paper's condition-number-sensitive algorithm (Theorem 4) has
// running time and work bounds parameterized by log C(X); the experiment
// harness uses this package to place measured work on that axis.
package condition

import (
	"math"

	"parsum/internal/accum"
)

// Number returns C(X) for the finite values xs. Conventions:
//   - empty input or all-zero input: 1 (perfectly conditioned),
//   - exact zero sum of a nonzero input: +Inf (the paper notes C is
//     undefined there; +Inf sorts such inputs as "hardest"),
//   - any NaN or Inf input: NaN.
func Number(xs []float64) float64 {
	num, den := Parts(xs)
	if math.IsNaN(num) || math.IsNaN(den) || math.IsInf(num, 0) || math.IsInf(den, 0) {
		return math.NaN()
	}
	if num == 0 {
		return 1
	}
	if den == 0 {
		return math.Inf(1)
	}
	return num / math.Abs(den)
}

// Parts returns (Σ|xᵢ|, Σxᵢ), each correctly rounded from its exact value.
func Parts(xs []float64) (absSum, sum float64) {
	a, s := accum.NewWindow(0), accum.NewWindow(0)
	for _, x := range xs {
		a.Add(math.Abs(x))
		s.Add(x)
	}
	return a.Round(), s.Round()
}

// Log2 returns log₂ C(X), clamped below at 0 — the quantity the paper's
// Theorem 4 bounds are expressed in (with logarithms defined to be at least
// 1 there; callers add their own floor). Returns +Inf for zero sums and NaN
// for invalid inputs.
func Log2(xs []float64) float64 {
	c := Number(xs)
	if math.IsNaN(c) {
		return math.NaN()
	}
	if math.IsInf(c, 1) {
		return math.Inf(1)
	}
	l := math.Log2(c)
	if l < 0 {
		return 0
	}
	return l
}
