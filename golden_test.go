// Golden-vector regression tests: testdata/golden/*.json pin the exact
// IEEE-754 bit pattern every registered engine produces on a set of
// ill-conditioned classics — Anderson cancellation, huge-κ generated
// vectors, and ±Inf/NaN tables — so accidental drift in any layer (digit
// arithmetic, rounding, merge order, engine wiring) fails a test instead
// of silently changing results someone downstream depends on.
//
// Regenerate after an *intentional* semantics change with:
//
//	go test -run TestGoldenVectors -update
//
// and review the diff: every changed bit pattern is a behavior change.
package parsum_test

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"testing"

	"parsum"
	"parsum/internal/condition"
	"parsum/internal/gen"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/golden expected bits from current behavior")

// goldenFile is one testdata/golden/*.json document.
type goldenFile struct {
	Description string       `json:"description"`
	Cases       []goldenCase `json:"cases"`
}

// goldenCase pins one input vector. Exactly one of Gen or Values describes
// the input; Expected maps engine name → hex IEEE-754 bits of its Sum.
// Kappa is informational (log2 of the condition number, +Inf rendered as
// "inf"), recorded at update time.
type goldenCase struct {
	Name     string            `json:"name"`
	Gen      *goldenGen        `json:"gen,omitempty"`
	Values   []string          `json:"values,omitempty"` // hex IEEE-754 bits
	Kappa    string            `json:"kappa_log2,omitempty"`
	Expected map[string]string `json:"expected"`
}

type goldenGen struct {
	Dist  string `json:"dist"`
	N     int64  `json:"n"`
	Delta int    `json:"delta"`
	Seed  uint64 `json:"seed"`
}

var goldenDists = map[string]gen.Dist{
	"condone":  gen.CondOne,
	"random":   gen.Random,
	"anderson": gen.Anderson,
	"sumzero":  gen.SumZero,
}

func (c *goldenCase) input(t *testing.T) []float64 {
	t.Helper()
	switch {
	case c.Gen != nil && c.Values != nil:
		t.Fatalf("case %q: both gen and values set", c.Name)
	case c.Gen != nil:
		d, ok := goldenDists[c.Gen.Dist]
		if !ok {
			t.Fatalf("case %q: unknown dist %q", c.Name, c.Gen.Dist)
		}
		return gen.New(gen.Config{Dist: d, N: c.Gen.N, Delta: c.Gen.Delta, Seed: c.Gen.Seed}).Slice()
	case c.Values != nil:
		xs := make([]float64, len(c.Values))
		for i, h := range c.Values {
			bits, err := strconv.ParseUint(h, 16, 64)
			if err != nil {
				t.Fatalf("case %q value %d: %v", c.Name, i, err)
			}
			xs[i] = math.Float64frombits(bits)
		}
		return xs
	}
	t.Fatalf("case %q: no input", c.Name)
	return nil
}

func goldenPaths(t *testing.T) []string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join("testdata", "golden", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no golden vectors found under testdata/golden")
	}
	sort.Strings(paths)
	return paths
}

func TestGoldenVectors(t *testing.T) {
	for _, path := range goldenPaths(t) {
		t.Run(filepath.Base(path), func(t *testing.T) {
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			var gf goldenFile
			if err := json.Unmarshal(raw, &gf); err != nil {
				t.Fatalf("parsing %s: %v", path, err)
			}
			changed := false
			for i := range gf.Cases {
				c := &gf.Cases[i]
				xs := c.input(t)
				if *updateGolden {
					c.Expected = map[string]string{}
					for _, info := range parsum.Engines() {
						v := parsum.SumEngine(info.Name, xs)
						c.Expected[info.Name] = fmt.Sprintf("%016x", math.Float64bits(v))
					}
					k := condition.Log2(xs)
					switch {
					case math.IsInf(k, 1):
						c.Kappa = "inf"
					case math.IsNaN(k):
						c.Kappa = "nan"
					default:
						c.Kappa = strconv.FormatFloat(k, 'f', 1, 64)
					}
					changed = true
					continue
				}
				if len(c.Expected) == 0 {
					t.Fatalf("case %q has no expected bits (run -update)", c.Name)
				}
				for name, wantHex := range c.Expected {
					wantBits, err := strconv.ParseUint(wantHex, 16, 64)
					if err != nil {
						t.Fatalf("case %q engine %q: bad bits %q", c.Name, name, wantHex)
					}
					got := parsum.SumEngine(name, xs)
					if gotBits := math.Float64bits(got); gotBits != wantBits {
						t.Errorf("case %q engine %q: bits %016x (%g), golden %016x (%g)",
							c.Name, name, gotBits, got, wantBits, math.Float64frombits(wantBits))
					}
				}
			}
			if changed {
				out, err := json.MarshalIndent(gf, "", "  ")
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("updated %s", path)
			}
		})
	}
}

// TestGoldenCoverEveryEngine: the golden corpus must pin every registered
// engine on at least one case, so a newly registered engine cannot ship
// without locked bits (run -update to add them).
func TestGoldenCoverEveryEngine(t *testing.T) {
	if *updateGolden {
		t.Skip("updating")
	}
	covered := map[string]bool{}
	for _, path := range goldenPaths(t) {
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var gf goldenFile
		if err := json.Unmarshal(raw, &gf); err != nil {
			t.Fatal(err)
		}
		for _, c := range gf.Cases {
			for name := range c.Expected {
				covered[name] = true
			}
		}
	}
	for _, info := range parsum.Engines() {
		if !covered[info.Name] {
			t.Errorf("engine %q has no golden vector (run go test -run TestGoldenVectors -update)", info.Name)
		}
	}
}
