// Command benchgate is the CI bench-regression gate: it compares a fresh
// parallel-benchmark snapshot (sumbench -figure parallel -jsonout ...)
// against the recorded baseline BENCH_parallel.json and exits non-zero
// when any guarded engine's best throughput regressed beyond the
// tolerance.
//
// Usage:
//
//	benchgate -baseline BENCH_parallel.json -candidate bench_new.json \
//	          -engines dense -tolerance 0.30
//
// Exit status: 0 all engines within tolerance, 1 regression detected,
// 2 usage or input error.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"parsum/internal/bench"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable body of main: load both snapshots, gate, report.
// It returns the process exit status.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		baselinePath  = fs.String("baseline", "BENCH_parallel.json", "recorded baseline snapshot")
		candidatePath = fs.String("candidate", "", "candidate snapshot to gate (required)")
		engines       = fs.String("engines", "dense", "comma-separated engines to guard")
		tolerance     = fs.Float64("tolerance", 0.30, "allowed fractional throughput regression in [0,1)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	if *candidatePath == "" {
		fmt.Fprintln(stderr, "benchgate: -candidate is required")
		fs.Usage()
		return 2
	}
	baseline, err := bench.LoadParallelSnapshot(*baselinePath)
	if err != nil {
		fmt.Fprintln(stderr, "benchgate:", err)
		return 2
	}
	candidate, err := bench.LoadParallelSnapshot(*candidatePath)
	if err != nil {
		fmt.Fprintln(stderr, "benchgate:", err)
		return 2
	}

	var names []string
	for _, e := range strings.Split(*engines, ",") {
		if e = strings.TrimSpace(e); e != "" {
			names = append(names, e)
		}
	}
	results, err := bench.Gate(baseline, candidate, names, *tolerance)
	if err != nil {
		fmt.Fprintln(stderr, "benchgate:", err)
		return 2
	}

	fmt.Fprintf(stdout, "bench-regression gate: tolerance %.0f%%, baseline n=%d (GOMAXPROCS=%d), candidate n=%d (GOMAXPROCS=%d)\n",
		*tolerance*100, baseline.N, baseline.GoMaxProcs, candidate.N, candidate.GoMaxProcs)
	if !candidate.SpeedupMeaningful() {
		fmt.Fprintf(stdout, "note: candidate measured with NumCPU=%d — speedup columns are ignored; the gate compares best throughput across worker counts\n",
			candidate.NumCPU)
	}
	failed := false
	for _, r := range results {
		fmt.Fprintln(stdout, r)
		if !r.Pass {
			failed = true
		}
	}
	if failed {
		fmt.Fprintln(stderr, "benchgate: throughput regression beyond tolerance")
		return 1
	}
	return 0
}
