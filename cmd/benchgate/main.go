// Command benchgate is the CI bench-regression gate: it compares a fresh
// parallel-benchmark snapshot (sumbench -figure parallel -jsonout ...)
// against the recorded baseline BENCH_parallel.json and exits non-zero
// when any guarded engine's best throughput regressed beyond the
// tolerance.
//
// Usage:
//
//	benchgate -baseline BENCH_parallel.json -candidate bench_new.json \
//	          -engines dense -tolerance 0.30
//
// Exit status: 0 all engines within tolerance, 1 regression detected,
// 2 usage or input error.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"parsum/internal/bench"
)

func main() {
	var (
		baselinePath  = flag.String("baseline", "BENCH_parallel.json", "recorded baseline snapshot")
		candidatePath = flag.String("candidate", "", "candidate snapshot to gate (required)")
		engines       = flag.String("engines", "dense", "comma-separated engines to guard")
		tolerance     = flag.Float64("tolerance", 0.30, "allowed fractional throughput regression in [0,1)")
	)
	flag.Parse()

	if *candidatePath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -candidate is required")
		flag.Usage()
		os.Exit(2)
	}
	baseline, err := bench.LoadParallelSnapshot(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	candidate, err := bench.LoadParallelSnapshot(*candidatePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}

	var names []string
	for _, e := range strings.Split(*engines, ",") {
		if e = strings.TrimSpace(e); e != "" {
			names = append(names, e)
		}
	}
	results, err := bench.Gate(baseline, candidate, names, *tolerance)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}

	fmt.Printf("bench-regression gate: tolerance %.0f%%, baseline n=%d (GOMAXPROCS=%d), candidate n=%d (GOMAXPROCS=%d)\n",
		*tolerance*100, baseline.N, baseline.GoMaxProcs, candidate.N, candidate.GoMaxProcs)
	failed := false
	for _, r := range results {
		fmt.Println(r)
		if !r.Pass {
			failed = true
		}
	}
	if failed {
		fmt.Fprintln(os.Stderr, "benchgate: throughput regression beyond tolerance")
		os.Exit(1)
	}
}
