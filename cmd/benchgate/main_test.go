package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// snapshot writes a minimal ParallelSnapshot JSON with one dense point at
// the given throughput and returns its path.
func snapshot(t *testing.T, name string, mops float64) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	data := fmt.Sprintf(`{"n":1000,"delta":10,"dist":"random","gomaxprocs":1,"reps":1,
		"points":[{"engine":"dense","workers":1,"chunk":64,"ns_per_op":1000,"mops_per_s":%g,"speedup_vs_base":1}]}`, mops)
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func runGate(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb strings.Builder
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestGatePasses(t *testing.T) {
	base := snapshot(t, "base.json", 100)
	cand := snapshot(t, "cand.json", 95) // within 30%
	code, out, errb := runGate(t, "-baseline", base, "-candidate", cand)
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errb)
	}
	if !strings.Contains(out, "PASS") || !strings.Contains(out, "dense") {
		t.Fatalf("output %q missing PASS verdict", out)
	}
}

func TestGateImprovementPasses(t *testing.T) {
	base := snapshot(t, "base.json", 100)
	cand := snapshot(t, "cand.json", 250)
	if code, _, errb := runGate(t, "-baseline", base, "-candidate", cand); code != 0 {
		t.Fatalf("improvement failed the gate: exit %d, stderr %q", code, errb)
	}
}

func TestGateFailsOnRegression(t *testing.T) {
	base := snapshot(t, "base.json", 100)
	cand := snapshot(t, "cand.json", 50) // 50% regression > 30% tolerance
	code, out, errb := runGate(t, "-baseline", base, "-candidate", cand)
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(out, "FAIL") || !strings.Contains(errb, "regression") {
		t.Fatalf("out %q / stderr %q missing failure report", out, errb)
	}
}

func TestGateTightToleranceFlag(t *testing.T) {
	base := snapshot(t, "base.json", 100)
	cand := snapshot(t, "cand.json", 95)
	if code, _, _ := runGate(t, "-baseline", base, "-candidate", cand, "-tolerance", "0.01"); code != 1 {
		t.Fatalf("5%% drop passed a 1%% gate: exit %d", code)
	}
}

func TestGateUsageErrors(t *testing.T) {
	base := snapshot(t, "base.json", 100)
	cand := snapshot(t, "cand.json", 90)

	if code, _, errb := runGate(t); code != 2 || !strings.Contains(errb, "-candidate is required") {
		t.Errorf("missing candidate: exit %d, stderr %q", code, errb)
	}
	if code, _, _ := runGate(t, "-candidate", cand, "-baseline", filepath.Join(t.TempDir(), "missing.json")); code != 2 {
		t.Errorf("missing baseline file: exit %d, want 2", code)
	}
	if code, _, _ := runGate(t, "-baseline", base, "-candidate", cand, "-engines", "no-such"); code != 2 {
		t.Errorf("unknown engine: exit %d, want 2", code)
	}
	if code, _, _ := runGate(t, "-baseline", base, "-candidate", cand, "-tolerance", "1.5"); code != 2 {
		t.Errorf("bad tolerance: exit %d, want 2", code)
	}
	if code, _, _ := runGate(t, "-no-such-flag"); code != 2 {
		t.Errorf("bad flag: exit %d, want 2", code)
	}

	// Malformed JSON baseline.
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _, _ := runGate(t, "-baseline", bad, "-candidate", cand); code != 2 {
		t.Errorf("malformed baseline: exit %d, want 2", code)
	}
	// Empty snapshot.
	empty := filepath.Join(t.TempDir(), "empty.json")
	if err := os.WriteFile(empty, []byte(`{"points":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _, _ := runGate(t, "-baseline", base, "-candidate", empty); code != 2 {
		t.Errorf("empty candidate: exit %d, want 2", code)
	}
}
