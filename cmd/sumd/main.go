// Command sumd is the distributed exact-aggregation daemon: an HTTP merge
// service backed by a sharded superaccumulator. Workers combine their
// slice of the input locally and push serialized exact partials (or raw
// value batches); sumd merges them carry-free and serves the correctly
// rounded sum, bit-identical to summing the concatenated input
// sequentially regardless of how the work was partitioned or interleaved.
//
// Usage:
//
//	sumd -addr :8372 -engine dense -shards 8
//	sumd -async -queue 512 -maxbatch 8192 -maxdelay 2ms
//	sumd -partitions 16   # keyed-store stripes for /v1/add?key=…
//
// With -async, /v1/add and /v1/sub go through the batched ingestion
// front-end: a bounded queue drained on a size-or-deadline trigger, 429
// with Retry-After when the queue is full (sync ingestion remains the
// default). Every ingest counter is served in Prometheus text format on
// GET /metrics.
//
// With -wal DIR, every state-mutating request is journaled to an
// append-only CRC-framed log in DIR and committed before it is
// acknowledged; on startup the daemon replays the directory and resumes
// with bit-identical pre-crash sums. -fsync picks the commit durability
// (always | interval | off), -segbytes the segment rotation threshold,
// and -snapshot-every N writes a state snapshot (truncating the
// replayed log) every N journaled mutations:
//
//	sumd -wal /var/lib/sumd/wal -fsync always -snapshot-every 100000
//
// Endpoints (see internal/sumdsrv): POST /v1/add, POST/GET /v1/partial,
// GET /v1/sum, POST /v1/reset, GET /v1/stats, GET /v1/healthz,
// GET /metrics — plus the keyed surface: /v1/add?key=, /v1/sum?key=,
// GET /v1/keys, POST/GET /v1/keyed/partial.
//
// The HTTP server is hardened against stuck and malicious peers with
// -read-header-timeout, -read-timeout, -write-timeout, and
// -idle-timeout (see internal/httpd for the defaults; negative
// disables one).
//
// Exit status: 0 on clean shutdown (SIGINT/SIGTERM), 1 on serve error,
// 2 on usage error.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"parsum/internal/httpd"
	"parsum/internal/sumdsrv"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable body of main: parse args, bind, serve until ctx is
// cancelled. It returns the process exit status.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sumd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr     = fs.String("addr", ":8372", "listen address (host:port; port 0 picks a free port)")
		engName  = fs.String("engine", "dense", "summation engine backing the service")
		shards   = fs.Int("shards", 0, "writer-stripe count (0 = GOMAXPROCS)")
		parts    = fs.Int("partitions", 0, "keyed-store partition count (0 = GOMAXPROCS)")
		maxBody  = fs.Int64("maxbody", 0, "request-body cap in bytes (0 = 64 MiB default)")
		async    = fs.Bool("async", false, "batch /v1/add and /v1/sub through the bounded-queue ingestion front-end")
		queue    = fs.Int("queue", 0, "async: bounded-queue capacity in requests (0 = 256)")
		maxBatch = fs.Int("maxbatch", 0, "async: pending-value count that triggers a flush (0 = 4096)")
		maxDelay = fs.Duration("maxdelay", 0, "async: latency budget before a deadline flush (0 = 2ms)")
		flushers = fs.Int("flushers", 0, "async: concurrent flusher goroutines (0 = 1)")
		walDir   = fs.String("wal", "", "write-ahead-log directory; journal every ingest and recover on startup (empty = no durability)")
		fsyncPol = fs.String("fsync", "", "wal: fsync policy: always, interval, or off (default always)")
		segBytes = fs.Int64("segbytes", 0, "wal: segment rotation threshold in bytes (0 = 64 MiB)")
		snapN    = fs.Int("snapshot-every", 0, "wal: write a snapshot every N journaled mutations (0 = never)")
		timeouts = httpd.Flags(fs)
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "sumd: unexpected arguments %q\n", fs.Args())
		return 2
	}
	if !*async && (*queue != 0 || *maxBatch != 0 || *maxDelay != 0 || *flushers != 0) {
		fmt.Fprintln(stderr, "sumd: -queue/-maxbatch/-maxdelay/-flushers require -async")
		return 2
	}
	if *walDir == "" && (*fsyncPol != "" || *segBytes != 0 || *snapN != 0) {
		fmt.Fprintln(stderr, "sumd: -fsync/-segbytes/-snapshot-every require -wal")
		return 2
	}
	srv, err := sumdsrv.New(sumdsrv.Options{
		Engine: *engName, Shards: *shards, KeyPartitions: *parts, MaxBodyBytes: *maxBody,
		Async: *async, QueueLen: *queue, MaxBatch: *maxBatch, MaxDelay: *maxDelay, Flushers: *flushers,
		WALDir: *walDir, WALFsync: *fsyncPol, WALSegBytes: *segBytes, WALSnapshotEvery: *snapN,
	})
	if err != nil {
		fmt.Fprintln(stderr, "sumd:", err)
		return 2
	}
	// Drain the async batcher (and seal the journal) on every exit path
	// so accepted batches are never dropped.
	defer srv.Close()
	if *walDir != "" {
		rec := srv.Recovery()
		fmt.Fprintf(stdout, "sumd: wal recovered records=%d snapshot=%t torn=%t truncated_bytes=%d\n",
			rec.Records, rec.SnapshotLoaded, rec.Torn, rec.TruncatedBytes)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "sumd:", err)
		return 1
	}
	mode := "sync"
	if *async {
		mode = "async"
	}
	fmt.Fprintf(stdout, "sumd: engine=%s ingest=%s listening on %s\n", srv.Engine(), mode, ln.Addr())

	hs := timeouts.Server(srv)
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case <-ctx.Done():
		shctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := hs.Shutdown(shctx); err != nil {
			fmt.Fprintln(stderr, "sumd: shutdown:", err)
			return 1
		}
		fmt.Fprintln(stdout, "sumd: shut down")
		return 0
	case err := <-errc:
		fmt.Fprintln(stderr, "sumd:", err)
		return 1
	}
}
