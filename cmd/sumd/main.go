// Command sumd is the distributed exact-aggregation daemon: an HTTP merge
// service backed by a sharded superaccumulator. Workers combine their
// slice of the input locally and push serialized exact partials (or raw
// value batches); sumd merges them carry-free and serves the correctly
// rounded sum, bit-identical to summing the concatenated input
// sequentially regardless of how the work was partitioned or interleaved.
//
// Usage:
//
//	sumd -addr :8372 -engine dense -shards 8
//
// Endpoints (see internal/sumdsrv): POST /v1/add, POST/GET /v1/partial,
// GET /v1/sum, POST /v1/reset, GET /v1/stats, GET /v1/healthz.
//
// Exit status: 0 on clean shutdown (SIGINT/SIGTERM), 1 on serve error,
// 2 on usage error.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"parsum/internal/sumdsrv"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable body of main: parse args, bind, serve until ctx is
// cancelled. It returns the process exit status.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sumd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr    = fs.String("addr", ":8372", "listen address (host:port; port 0 picks a free port)")
		engName = fs.String("engine", "dense", "summation engine backing the service")
		shards  = fs.Int("shards", 0, "writer-stripe count (0 = GOMAXPROCS)")
		maxBody = fs.Int64("maxbody", 0, "request-body cap in bytes (0 = 64 MiB default)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "sumd: unexpected arguments %q\n", fs.Args())
		return 2
	}
	srv, err := sumdsrv.New(sumdsrv.Options{Engine: *engName, Shards: *shards, MaxBodyBytes: *maxBody})
	if err != nil {
		fmt.Fprintln(stderr, "sumd:", err)
		return 2
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "sumd:", err)
		return 1
	}
	fmt.Fprintf(stdout, "sumd: engine=%s listening on %s\n", srv.Engine(), ln.Addr())

	hs := &http.Server{Handler: srv, ReadHeaderTimeout: 10 * time.Second}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case <-ctx.Done():
		shctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := hs.Shutdown(shctx); err != nil {
			fmt.Fprintln(stderr, "sumd: shutdown:", err)
			return 1
		}
		fmt.Fprintln(stdout, "sumd: shut down")
		return 0
	case err := <-errc:
		fmt.Fprintln(stderr, "sumd:", err)
		return 1
	}
}
