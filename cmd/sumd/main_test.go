package main

import (
	"context"
	"io"
	"net/http"
	"regexp"
	"strings"
	"testing"
	"time"
)

func TestRunUsageErrors(t *testing.T) {
	ctx := context.Background()
	var out, errb strings.Builder
	if got := run(ctx, []string{"-no-such-flag"}, &out, &errb); got != 2 {
		t.Errorf("bad flag: exit %d, want 2", got)
	}
	if got := run(ctx, []string{"stray-arg"}, &out, &errb); got != 2 {
		t.Errorf("stray arg: exit %d, want 2", got)
	}
	if got := run(ctx, []string{"-engine", "no-such-engine"}, &out, &errb); got != 2 {
		t.Errorf("unknown engine: exit %d, want 2", got)
	}
	if got := run(ctx, []string{"-engine", "kahan"}, &out, &errb); got != 2 {
		t.Errorf("non-sharded engine: exit %d, want 2", got)
	}
	if got := run(ctx, []string{"-addr", "256.256.256.256:1"}, &out, &errb); got != 1 {
		t.Errorf("unbindable addr: exit %d, want 1", got)
	}
	// Async tuning knobs are meaningless without -async: misconfiguration
	// must fail loudly at startup, not be silently ignored.
	for _, args := range [][]string{
		{"-queue", "8"},
		{"-maxbatch", "1024"},
		{"-maxdelay", "1ms"},
		{"-flushers", "2"},
	} {
		errb.Reset()
		if got := run(ctx, args, &out, &errb); got != 2 {
			t.Errorf("%v without -async: exit %d, want 2", args, got)
		}
		if !strings.Contains(errb.String(), "require -async") {
			t.Errorf("%v: stderr %q does not explain the -async requirement", args, errb.String())
		}
	}
	// Same for the WAL tuning knobs without -wal.
	for _, args := range [][]string{
		{"-fsync", "off"},
		{"-segbytes", "1024"},
		{"-snapshot-every", "10"},
	} {
		errb.Reset()
		if got := run(ctx, args, &out, &errb); got != 2 {
			t.Errorf("%v without -wal: exit %d, want 2", args, got)
		}
		if !strings.Contains(errb.String(), "require -wal") {
			t.Errorf("%v: stderr %q does not explain the -wal requirement", args, errb.String())
		}
	}
	// An unknown fsync policy is a startup error, not a silent default.
	errb.Reset()
	if got := run(ctx, []string{"-wal", t.TempDir(), "-fsync", "sometimes"}, &out, &errb); got != 2 {
		t.Errorf("unknown fsync policy: exit %d, want 2", got)
	}
}

// TestRunWALRecoversAcrossRestarts is the end-to-end durability loop at
// the flag level: ingest into a -wal daemon, stop it, start a second
// daemon on the same directory, and read back the identical sum.
func TestRunWALRecoversAcrossRestarts(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-addr", "127.0.0.1:0", "-shards", "2", "-wal", dir, "-fsync", "off"}

	addr, cancel, done := startDaemon(t, args)
	base := "http://" + addr
	resp, err := http.Post(base+"/v1/add", "application/json", strings.NewReader(`{"values":[1.5,2.25]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("add: %d", resp.StatusCode)
	}
	cancel()
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("first daemon exit %d, want 0", code)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("first daemon did not shut down")
	}

	addr, cancel, done = startDaemon(t, args)
	defer cancel()
	resp, err = http.Get("http://" + addr + "/v1/sum")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), `"sum":"3.75"`) {
		t.Fatalf("sum after restart: %s", body)
	}
	resp, err = http.Get("http://" + addr + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), `"wal"`) {
		t.Fatalf("stats of a -wal daemon lack the wal section: %s", body)
	}
	cancel()
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("second daemon exit %d, want 0", code)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("second daemon did not shut down")
	}
}

// startDaemon runs the daemon in the background and returns its bound
// address once the "listening on" line appears.
func startDaemon(t *testing.T, args []string) (addr string, cancel context.CancelFunc, done chan int) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	outc := make(chan string, 16)
	done = make(chan int, 1)
	go func() {
		var errb strings.Builder
		done <- run(ctx, args, &allLineWriter{c: outc}, &errb)
	}()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case line := <-outc:
			if m := regexp.MustCompile(`listening on (\S+)`).FindStringSubmatch(line); m != nil {
				return m[1], cancel, done
			}
		case <-deadline:
			cancel()
			t.Fatal("sumd did not report a listen address")
		}
	}
}

// allLineWriter forwards every Write as a string on the channel (the
// recovery report precedes the "listening on" line under -wal).
type allLineWriter struct {
	c chan<- string
}

func (w *allLineWriter) Write(p []byte) (int, error) {
	select {
	case w.c <- string(p):
	default:
	}
	return len(p), nil
}

func TestRunAsyncModeServesBatchedIngest(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	outc := make(chan string, 1)
	done := make(chan int, 1)
	go func() {
		var errb strings.Builder
		done <- run(ctx, []string{
			"-addr", "127.0.0.1:0", "-shards", "2",
			"-async", "-queue", "64", "-maxbatch", "256", "-maxdelay", "1ms", "-flushers", "2",
		}, &lineWriter{c: outc}, &errb)
	}()

	var addr string
	select {
	case line := <-outc:
		if !strings.Contains(line, "ingest=async") {
			t.Errorf("startup line %q does not report async ingest", line)
		}
		m := regexp.MustCompile(`listening on (\S+)`).FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("no address in %q", line)
		}
		addr = m[1]
	case <-time.After(5 * time.Second):
		t.Fatal("sumd did not report a listen address")
	}
	base := "http://" + addr

	resp, err := http.Post(base+"/v1/add", "application/json", strings.NewReader(`{"values":[1.5,2.5]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("batched add: %d", resp.StatusCode)
	}
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "sumd_ingest_enqueued_total") {
		t.Error("/metrics of an async daemon lacks the ingest families")
	}

	cancel()
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("clean shutdown exit %d, want 0", code)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("sumd did not shut down")
	}
}

func TestRunServesAndShutsDown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	outc := make(chan string, 1)
	done := make(chan int, 1)
	go func() {
		var errb strings.Builder
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-shards", "2", "-partitions", "4"}, &lineWriter{c: outc}, &errb)
	}()

	// The first output line reports the bound address.
	var addr string
	select {
	case line := <-outc:
		m := regexp.MustCompile(`listening on (\S+)`).FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("no address in %q", line)
		}
		addr = m[1]
	case <-time.After(5 * time.Second):
		t.Fatal("sumd did not report a listen address")
	}

	resp, err := http.Get("http://" + addr + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	// The -partitions flag stands up the keyed surface: a keyed add must
	// round-trip through /v1/sum?key= and report the configured stripes.
	resp, err = http.Post("http://"+addr+"/v1/add?key=acct", "application/json", strings.NewReader(`{"values":[1.25,2.25]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("keyed add: %d", resp.StatusCode)
	}
	resp, err = http.Get("http://" + addr + "/v1/sum?key=acct")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body), `"sum":"3.5"`) {
		t.Fatalf("keyed sum: status %d body %s", resp.StatusCode, body)
	}
	resp, err = http.Get("http://" + addr + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), `"partitions":4`) {
		t.Fatalf("stats do not report the -partitions value: %s", body)
	}

	cancel()
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("clean shutdown exit %d, want 0", code)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("sumd did not shut down")
	}
}

// lineWriter forwards its first Write as a string on the channel — enough
// to capture the "listening on" line without buffering races.
type lineWriter struct {
	c    chan<- string
	sent bool
}

func (w *lineWriter) Write(p []byte) (int, error) {
	if !w.sent {
		w.sent = true
		w.c <- string(p)
	}
	return len(p), nil
}
