// Command sumx computes the exact, correctly rounded sum of a stream of
// float64 values — the end-user face of the library. It reads decimal text
// (whitespace-separated) or raw little-endian float64 binary from stdin or
// the named files, accumulating through any streaming engine in the
// summation-engine registry.
//
// Usage:
//
//	sumgen -dist sumzero -n 1000000 | sumx
//	sumx -bin data.f64
//	sumx -stats data.txt        # also print n, Σ|x|, C(X), σ
//	sumx -engine dense data.txt # pick a registered engine
//	sumx -engines               # list the registry and exit
//
// Note that text input is parsed with strconv.ParseFloat, which rounds each
// decimal literal to the nearest float64 first; the sum is exact over those
// parsed values.
package main

import (
	"bufio"
	"encoding/binary"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"

	_ "parsum/internal/baseline" // register baseline engines
	_ "parsum/internal/core"     // register superaccumulator engines
	"parsum/internal/engine"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// run is the testable body of main: parse args, sum the input streams,
// print the result. It returns the process exit status.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sumx", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		bin     = fs.Bool("bin", false, "input is raw little-endian float64 binary")
		stats   = fs.Bool("stats", false, "print count, Σ|x|, condition number, and accumulator σ")
		engName = fs.String("engine", "sparse", "streaming summation engine (see -engines)")
		list    = fs.Bool("engines", false, "list registered engines and exit")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	if *list {
		for _, e := range engine.All() {
			streaming := " "
			if e.Caps().Streaming {
				streaming = "*"
			}
			fmt.Fprintf(stdout, "%s %-12s %s\n", streaming, e.Name(), e.Doc())
		}
		fmt.Fprintln(stdout, "engines marked * stream and are usable with -engine")
		return 0
	}

	fail := func(err error) int {
		fmt.Fprintln(stderr, "sumx:", err)
		return 1
	}

	eng, ok := engine.Get(*engName)
	if !ok {
		return fail(fmt.Errorf("unknown engine %q (see -engines)", *engName))
	}
	sum := eng.NewAccumulator()
	if sum == nil {
		return fail(fmt.Errorf("engine %q does not stream; pick a streaming engine (see -engines)", *engName))
	}
	abs := eng.NewAccumulator()
	var n int64

	process := func(r io.Reader) error {
		if *bin {
			br := bufio.NewReaderSize(r, 1<<20)
			var buf [8]byte
			for {
				if nr, err := io.ReadFull(br, buf[:]); err != nil {
					if err == io.EOF {
						return nil
					}
					if err == io.ErrUnexpectedEOF {
						return fmt.Errorf("trailing %d bytes are not a float64", nr)
					}
					return err
				}
				x := math.Float64frombits(binary.LittleEndian.Uint64(buf[:]))
				sum.Add(x)
				if *stats {
					abs.Add(math.Abs(x))
				}
				n++
			}
		}
		sc := bufio.NewScanner(r)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		sc.Split(bufio.ScanWords)
		for sc.Scan() {
			x, err := strconv.ParseFloat(sc.Text(), 64)
			if err != nil {
				return fmt.Errorf("bad number %q: %v", sc.Text(), err)
			}
			sum.Add(x)
			if *stats {
				abs.Add(math.Abs(x))
			}
			n++
		}
		return sc.Err()
	}

	if fs.NArg() == 0 {
		if err := process(stdin); err != nil {
			return fail(err)
		}
	} else {
		for _, name := range fs.Args() {
			f, err := os.Open(name)
			if err != nil {
				return fail(err)
			}
			err = process(f)
			f.Close()
			if err != nil {
				return fail(err)
			}
		}
	}

	s := sum.Round()
	fmt.Fprintln(stdout, strconv.FormatFloat(s, 'g', -1, 64))
	if *stats {
		a := abs.Round()
		c := math.NaN()
		switch {
		case a == 0:
			c = 1
		case s == 0:
			c = math.Inf(1)
		default:
			c = a / math.Abs(s)
		}
		sigma := "n/a"
		if sc, ok := sum.(engine.SigmaCounter); ok {
			sigma = strconv.Itoa(sc.Sigma())
		}
		fmt.Fprintf(stderr, "n=%d  sum|x|=%g  C(X)=%g  sigma=%s components  engine=%s\n",
			n, a, c, sigma, *engName)
	}
	return 0
}
