// Command sumx computes the exact, correctly rounded sum of a stream of
// float64 values — the end-user face of the library. It reads decimal text
// (whitespace-separated) or raw little-endian float64 binary from stdin or
// the named files.
//
// Usage:
//
//	sumgen -dist sumzero -n 1000000 | sumx
//	sumx -bin data.f64
//	sumx -stats data.txt        # also print n, Σ|x|, C(X), σ
//
// Note that text input is parsed with strconv.ParseFloat, which rounds each
// decimal literal to the nearest float64 first; the sum is exact over those
// parsed values.
package main

import (
	"bufio"
	"encoding/binary"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"

	"parsum/internal/accum"
)

func main() {
	var (
		bin   = flag.Bool("bin", false, "input is raw little-endian float64 binary")
		stats = flag.Bool("stats", false, "print count, Σ|x|, condition number, and accumulator σ")
	)
	flag.Parse()

	sum := accum.NewWindow(0)
	abs := accum.NewWindow(0)
	var n int64

	process := func(r io.Reader) error {
		if *bin {
			br := bufio.NewReaderSize(r, 1<<20)
			var buf [8]byte
			for {
				if _, err := io.ReadFull(br, buf[:]); err != nil {
					if err == io.EOF {
						return nil
					}
					if err == io.ErrUnexpectedEOF {
						return fmt.Errorf("trailing %d bytes are not a float64", len(buf))
					}
					return err
				}
				x := math.Float64frombits(binary.LittleEndian.Uint64(buf[:]))
				sum.Add(x)
				if *stats {
					abs.Add(math.Abs(x))
				}
				n++
			}
		}
		sc := bufio.NewScanner(r)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		sc.Split(bufio.ScanWords)
		for sc.Scan() {
			x, err := strconv.ParseFloat(sc.Text(), 64)
			if err != nil {
				return fmt.Errorf("bad number %q: %v", sc.Text(), err)
			}
			sum.Add(x)
			if *stats {
				abs.Add(math.Abs(x))
			}
			n++
		}
		return sc.Err()
	}

	if flag.NArg() == 0 {
		if err := process(os.Stdin); err != nil {
			fail(err)
		}
	} else {
		for _, name := range flag.Args() {
			f, err := os.Open(name)
			if err != nil {
				fail(err)
			}
			err = process(f)
			f.Close()
			if err != nil {
				fail(err)
			}
		}
	}

	s := sum.Round()
	fmt.Println(strconv.FormatFloat(s, 'g', -1, 64))
	if *stats {
		a := abs.Round()
		c := math.NaN()
		switch {
		case a == 0:
			c = 1
		case s == 0:
			c = math.Inf(1)
		default:
			c = a / math.Abs(s)
		}
		fmt.Fprintf(os.Stderr, "n=%d  sum|x|=%g  C(X)=%g  sigma=%d components\n",
			n, a, c, sum.ToSparse().Len())
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "sumx:", err)
	os.Exit(1)
}
