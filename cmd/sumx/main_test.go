package main

import (
	"encoding/binary"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runSumx(t *testing.T, args []string, stdin string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb strings.Builder
	code = run(args, strings.NewReader(stdin), &out, &errb)
	return code, out.String(), errb.String()
}

func TestRunTextSum(t *testing.T) {
	code, out, errb := runSumx(t, nil, "1e100 1 -1e100\n")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errb)
	}
	if strings.TrimSpace(out) != "1" {
		t.Fatalf("sum = %q, want 1 (exact summation)", out)
	}
}

func TestRunBinarySum(t *testing.T) {
	xs := []float64{0.1, 0.2, 0.3, -0.3, -0.2}
	var b strings.Builder
	buf := make([]byte, 8)
	for _, x := range xs {
		binary.LittleEndian.PutUint64(buf, math.Float64bits(x))
		b.Write(buf)
	}
	code, out, errb := runSumx(t, []string{"-bin"}, b.String())
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errb)
	}
	if strings.TrimSpace(out) != "0.1" {
		t.Fatalf("sum = %q, want 0.1", out)
	}
}

func TestRunBinaryTrailingBytes(t *testing.T) {
	code, _, errb := runSumx(t, []string{"-bin"}, "12345")
	if code != 1 || !strings.Contains(errb, "not a float64") {
		t.Fatalf("exit %d, stderr %q", code, errb)
	}
}

func TestRunFileArgsAndStats(t *testing.T) {
	dir := t.TempDir()
	f1 := filepath.Join(dir, "a.txt")
	f2 := filepath.Join(dir, "b.txt")
	if err := os.WriteFile(f1, []byte("2.5 -1.5\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(f2, []byte("4\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, errb := runSumx(t, []string{"-stats", f1, f2}, "")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errb)
	}
	if strings.TrimSpace(out) != "5" {
		t.Fatalf("sum = %q, want 5", out)
	}
	for _, want := range []string{"n=3", "sum|x|=8", "engine=sparse"} {
		if !strings.Contains(errb, want) {
			t.Errorf("stats %q missing %q", errb, want)
		}
	}
}

func TestRunEnginesListing(t *testing.T) {
	code, out, _ := runSumx(t, []string{"-engines"}, "")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, eng := range []string{"dense", "sparse", "ifastsum", "kahan"} {
		if !strings.Contains(out, eng) {
			t.Errorf("listing missing engine %q", eng)
		}
	}
}

func TestRunErrorPaths(t *testing.T) {
	if code, _, errb := runSumx(t, []string{"-engine", "no-such"}, "1"); code != 1 || !strings.Contains(errb, "unknown engine") {
		t.Errorf("unknown engine: exit %d, stderr %q", code, errb)
	}
	if code, _, errb := runSumx(t, []string{"-engine", "kahan"}, "1"); code != 1 || !strings.Contains(errb, "does not stream") {
		t.Errorf("non-streaming engine: exit %d, stderr %q", code, errb)
	}
	if code, _, _ := runSumx(t, []string{"-no-such-flag"}, ""); code != 2 {
		t.Errorf("bad flag: exit %d, want 2", code)
	}
	if code, _, errb := runSumx(t, nil, "1 two 3"); code != 1 || !strings.Contains(errb, "bad number") {
		t.Errorf("bad number: exit %d, stderr %q", code, errb)
	}
	if code, _, _ := runSumx(t, []string{filepath.Join(t.TempDir(), "missing.txt")}, ""); code != 1 {
		t.Errorf("missing file: exit %d, want 1", code)
	}
}

func TestRunSpecialsRoundTrip(t *testing.T) {
	code, out, _ := runSumx(t, nil, "+Inf 1 2")
	if code != 0 || strings.TrimSpace(out) != "+Inf" {
		t.Fatalf("inf sum: exit %d out %q", code, out)
	}
	code, out, _ = runSumx(t, nil, "+Inf -Inf")
	if code != 0 || strings.TrimSpace(out) != "NaN" {
		t.Fatalf("inf cancel: exit %d out %q", code, out)
	}
}
