// Command sumproxy is the fault-tolerant front door to a fleet of sumd
// backends: a consistent-hash router that replicates every keyed write
// to R backends, fails reads over down the replica list, trips
// per-backend circuit breakers around dead peers, queues hinted
// handoffs for replicas that miss acked writes, and re-converges the
// fleet with anti-entropy repair — all while preserving the exact
// summation semantics, so after a repair round every replica's per-key
// sum is bit-identical.
//
// Usage:
//
//	sumproxy -backends http://h1:8372,http://h2:8372,http://h3:8372
//	sumproxy -backends ... -replication 3 -ack quorum -repair-every 30s
//
// Endpoints (see internal/proxy): POST /v1/add?key=, POST /v1/sub?key=,
// GET /v1/sum?key=, GET /v1/keys, GET /v1/topology, POST /v1/repair,
// GET /v1/healthz, GET /v1/readyz, GET /metrics.
//
// The HTTP server shares sumd's hardening flags: -read-header-timeout,
// -read-timeout, -write-timeout, -idle-timeout (negative disables one).
//
// Exit status: 0 on clean shutdown (SIGINT/SIGTERM), 1 on serve error,
// 2 on usage error.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"parsum/internal/httpd"
	"parsum/internal/proxy"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable body of main: parse args, bind, serve until ctx
// is cancelled. It returns the process exit status.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sumproxy", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr        = fs.String("addr", ":8373", "listen address (host:port; port 0 picks a free port)")
		backends    = fs.String("backends", "", "comma-separated sumd base URLs (required)")
		replication = fs.Int("replication", 0, "replicas per key (0 = min(3, backends))")
		vnodes      = fs.Int("vnodes", 0, "ring virtual nodes per backend (0 = default)")
		ackMode     = fs.String("ack", "", "write ack mode: quorum, all, or one (default quorum)")
		engName     = fs.String("engine", "dense", "summation engine; must match the backends and be invertible")
		timeout     = fs.Duration("timeout", 0, "per-backend-attempt deadline (0 = 5s)")
		retry429    = fs.Int("retry429", 0, "retries per backend attempt on 429 shed responses")
		brThresh    = fs.Int("breaker-threshold", 0, "consecutive failures that open a backend's breaker (0 = default)")
		brCooldown  = fs.Duration("breaker-cooldown", 0, "open-breaker cooldown before a half-open probe (0 = default)")
		hintCap     = fs.Int("hint-cap", 0, "max queued hints per backend, oldest dropped beyond (0 = 1024)")
		replayEvery = fs.Duration("replay-every", 0, "hint-replay loop period (0 = 500ms, negative disables)")
		repairEvery = fs.Duration("repair-every", 0, "background anti-entropy period (0 = on-demand only)")
		maxBody     = fs.Int64("maxbody", 0, "request-body cap in bytes (0 = 64 MiB default)")
		timeouts    = httpd.Flags(fs)
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "sumproxy: unexpected arguments %q\n", fs.Args())
		return 2
	}
	if *backends == "" {
		fmt.Fprintln(stderr, "sumproxy: -backends is required")
		return 2
	}
	var nodes []string
	for _, b := range strings.Split(*backends, ",") {
		if b = strings.TrimSpace(b); b != "" {
			nodes = append(nodes, b)
		}
	}
	p, err := proxy.New(proxy.Options{
		Backends: nodes, Replication: *replication, VNodes: *vnodes,
		AckMode: *ackMode, Engine: *engName,
		Timeout: *timeout, Retry429: *retry429,
		BreakerThreshold: *brThresh, BreakerCooldown: *brCooldown,
		HintCap: *hintCap, ReplayEvery: *replayEvery, RepairEvery: *repairEvery,
		MaxBodyBytes: *maxBody,
	})
	if err != nil {
		fmt.Fprintln(stderr, "sumproxy:", err)
		return 2
	}
	defer p.Close()
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "sumproxy:", err)
		return 1
	}
	fmt.Fprintf(stdout, "sumproxy: backends=%d replication=%d listening on %s\n",
		len(nodes), p.Replication(), ln.Addr())

	hs := timeouts.Server(p)
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case <-ctx.Done():
		shctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := hs.Shutdown(shctx); err != nil {
			fmt.Fprintln(stderr, "sumproxy: shutdown:", err)
			return 1
		}
		fmt.Fprintln(stdout, "sumproxy: shut down")
		return 0
	case err := <-errc:
		fmt.Fprintln(stderr, "sumproxy:", err)
		return 1
	}
}
