package main

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestRunUsageErrors(t *testing.T) {
	ctx := context.Background()
	var out, errb strings.Builder
	if got := run(ctx, []string{"-no-such-flag"}, &out, &errb); got != 2 {
		t.Errorf("bad flag: exit %d, want 2", got)
	}
	if got := run(ctx, []string{"-backends", "http://x", "stray"}, &out, &errb); got != 2 {
		t.Errorf("stray arg: exit %d, want 2", got)
	}
	errb.Reset()
	if got := run(ctx, nil, &out, &errb); got != 2 {
		t.Errorf("no backends: exit %d, want 2", got)
	}
	if !strings.Contains(errb.String(), "-backends is required") {
		t.Errorf("no backends: stderr %q does not name the missing flag", errb.String())
	}
	// A backends list that trims down to nothing is as missing as none.
	if got := run(ctx, []string{"-backends", " , ,"}, &out, &errb); got != 2 {
		t.Errorf("empty backends list: exit %d, want 2", got)
	}
	if got := run(ctx, []string{"-backends", "http://x", "-engine", "no-such-engine"}, &out, &errb); got != 2 {
		t.Errorf("unknown engine: exit %d, want 2", got)
	}
	// kahan is registered but not invertible; repair cannot push diffs.
	errb.Reset()
	if got := run(ctx, []string{"-backends", "http://x", "-engine", "kahan"}, &out, &errb); got != 2 {
		t.Errorf("non-invertible engine: exit %d, want 2", got)
	}
	if !strings.Contains(errb.String(), "not invertible") {
		t.Errorf("kahan: stderr %q does not explain invertibility", errb.String())
	}
	if got := run(ctx, []string{"-backends", "http://x", "-ack", "most"}, &out, &errb); got != 2 {
		t.Errorf("unknown ack mode: exit %d, want 2", got)
	}
	if got := run(ctx, []string{"-backends", "http://x", "-addr", "256.256.256.256:1"}, &out, &errb); got != 1 {
		t.Errorf("unbindable addr: exit %d, want 1", got)
	}
	if got := run(ctx, []string{"-h"}, &out, &errb); got != 0 {
		t.Errorf("-h: exit %d, want 0", got)
	}
}

func TestRunServesAndShutsDown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	outc := make(chan string, 16)
	done := make(chan int, 1)
	go func() {
		var errb strings.Builder
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-backends", "http://127.0.0.1:1"},
			&lineWriter{c: outc}, &errb)
	}()
	deadline := time.After(5 * time.Second)
	started := false
	for !started {
		select {
		case line := <-outc:
			started = strings.Contains(line, "listening on")
		case <-deadline:
			cancel()
			t.Fatal("sumproxy did not report a listen address")
		}
	}
	cancel()
	select {
	case got := <-done:
		if got != 0 {
			t.Fatalf("exit %d, want 0", got)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("sumproxy did not shut down")
	}
}

// lineWriter forwards every Write as a string on the channel.
type lineWriter struct {
	c chan<- string
}

func (w *lineWriter) Write(p []byte) (int, error) {
	select {
	case w.c <- string(p):
	default:
	}
	return len(p), nil
}
