// Command sumbench regenerates the paper's figures and the reproduction's
// theory-validation tables (see DESIGN.md §5 for the experiment index and
// EXPERIMENTS.md for a recorded reference run).
//
// Usage:
//
//	sumbench -figure f1 [-sizes 1000000,10000000] [-delta 2000] [-workers 32]
//	sumbench -figure all -quick
//	sumbench -figure engines                  # list the engine registry
//	sumbench -figure parallel -jsonout BENCH_parallel.json
//
// Figures: f1 f2 f3 pram cond em carry radix sigma combiner seq parallel
// engines all. The seq and parallel figures enumerate the summation-engine
// registry, so newly registered engines appear without harness changes.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"parsum/internal/bench"
	"parsum/internal/engine"
)

func main() {
	var (
		figure    = flag.String("figure", "all", "which experiment to run: f1 f2 f3 pram cond em carry radix sigma combiner seq parallel engines all")
		sizes     = flag.String("sizes", "1000000,10000000,100000000", "comma-separated input sizes for figure 1")
		n         = flag.Int64("n", 10_000_000, "input size for figures 2 and 3")
		delta     = flag.Int("delta", 2000, "exponent-range parameter δ for figures 1 and 3")
		deltas    = flag.String("deltas", "10,30,50,100,300,500,1000,2000", "δ sweep for figure 2")
		workers   = flag.Int("workers", 32, "modeled cluster size")
		workerSet = flag.String("workerlist", "1,2,4,8,16,32", "cluster-size sweep for figure 3")
		split     = flag.Int("split", 1<<20, "elements per input split")
		seed      = flag.Uint64("seed", 1, "dataset seed")
		quick     = flag.Bool("quick", false, "shrink sizes for a fast smoke run")
		engines   = flag.String("engines", "dense,sparse,small,large", "engines for the parallel figure")
		reps      = flag.Int("reps", 3, "repetitions per parallel cell (best-of)")
		jsonOut   = flag.String("jsonout", "", "write the parallel figure's snapshot as JSON to this file")
	)
	flag.Parse()

	cfg := bench.Defaults()
	cfg.Workers = *workers
	cfg.SplitSize = *split
	cfg.Seed = *seed

	szs := parseInts64(*sizes)
	dls := parseInts(*deltas)
	wl := parseInts(*workerSet)
	nn := *n
	if *quick {
		szs = []int64{100_000, 1_000_000}
		nn = 1_000_000
		cfg.SplitSize = 1 << 16
	}

	show := func(ts ...bench.Table) {
		for _, t := range ts {
			fmt.Println(t.Format())
		}
	}
	run := func(name string) {
		switch name {
		case "f1":
			show(bench.Figure1(szs, *delta, cfg)...)
		case "f2":
			show(bench.Figure2(nn, dls, cfg)...)
		case "f3":
			show(bench.Figure3(nn, *delta, wl, cfg)...)
		case "pram":
			show(bench.PRAMTable([]int{64, 256, 1024, 4096}, 32))
		case "cond":
			show(bench.CondTable(20000, []int{0, 100, 200, 300, 400, 500, 700, 900}))
		case "em":
			show(bench.EMTable([]int64{10_000, 40_000, 160_000, 640_000}, 256, 2048))
		case "carry":
			show(bench.CarryTable([]uint{8, 16, 24, 32}, 256))
		case "radix":
			sz := nn
			if *quick {
				sz = 1_000_000
			}
			show(bench.RadixTable([]uint{8, 16, 24, 32}, sz))
		case "combiner":
			show(bench.CombinerTable(nn, cfg))
		case "sigma":
			sz := nn
			if *quick {
				sz = 100_000
			}
			show(bench.SigmaTable(sz, dls))
		case "seq":
			sz := nn
			if *quick {
				sz = 1_000_000
			}
			show(bench.SeqTable(sz, *delta)...)
		case "parallel":
			sz := nn
			if *quick {
				sz = 1_000_000
			}
			names := splitNames(*engines)
			for _, nm := range names {
				if _, ok := engine.Get(nm); !ok {
					fmt.Fprintf(os.Stderr, "unknown engine %q (known: %s)\n", nm, strings.Join(engine.Names(), ", "))
					os.Exit(2)
				}
			}
			snap := bench.ParallelBench(sz, *delta, wl, names, *reps)
			show(snap.Table())
			if *jsonOut != "" {
				data, err := snap.JSON()
				if err != nil {
					fmt.Fprintf(os.Stderr, "encoding snapshot: %v\n", err)
					os.Exit(1)
				}
				if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
					fmt.Fprintf(os.Stderr, "writing %s: %v\n", *jsonOut, err)
					os.Exit(1)
				}
				fmt.Printf("snapshot written to %s\n", *jsonOut)
			}
		case "engines":
			listEngines()
		default:
			fmt.Fprintf(os.Stderr, "unknown figure %q\n", name)
			os.Exit(2)
		}
	}
	if *figure == "all" {
		for _, f := range []string{"f1", "f2", "f3", "pram", "cond", "em", "carry", "radix", "sigma", "combiner", "seq", "parallel"} {
			run(f)
		}
		return
	}
	for _, f := range strings.Split(*figure, ",") {
		run(strings.TrimSpace(f))
	}
}

// listEngines prints the summation-engine registry with capability flags.
func listEngines() {
	fmt.Printf("%-12s %-8s %s\n", "ENGINE", "CAPS", "DESCRIPTION")
	for _, e := range engine.All() {
		c := e.Caps()
		flags := ""
		for _, f := range []struct {
			on bool
			ch string
		}{{c.Exact, "E"}, {c.CorrectlyRounded, "R"}, {c.Faithful, "F"}, {c.DeterministicParallel, "P"}, {c.Streaming, "S"}} {
			if f.on {
				flags += f.ch
			} else {
				flags += "-"
			}
		}
		fmt.Printf("%-12s %-8s %s\n", e.Name(), flags, e.Doc())
	}
	fmt.Println("caps: E=exact R=correctly-rounded F=faithful P=deterministic-parallel S=streaming")
}

func splitNames(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func parseInts(s string) []int {
	var out []int
	for _, p := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad integer %q\n", p)
			os.Exit(2)
		}
		out = append(out, v)
	}
	return out
}

func parseInts64(s string) []int64 {
	var out []int64
	for _, v := range parseInts(s) {
		out = append(out, int64(v))
	}
	return out
}
