// Command sumbench regenerates the paper's figures and the reproduction's
// theory-validation tables (see DESIGN.md §5 for the experiment index and
// EXPERIMENTS.md for a recorded reference run).
//
// Usage:
//
//	sumbench -figure f1 [-sizes 1000000,10000000] [-delta 2000] [-workers 32]
//	sumbench -figure all -quick
//	sumbench -figure engines                  # list the engine registry
//	sumbench -figure parallel -jsonout BENCH_parallel.json
//	sumbench -figure ingest -workerlist 1,2,4,8 -batches 1,64,4096
//
// Figures: f1 f2 f3 pram cond em carry radix sigma combiner seq parallel
// ingest wire stream keyed engines all. The seq, parallel, ingest, wire,
// and keyed figures enumerate the summation-engine registry, so newly
// registered engines appear without harness changes. Unknown -figure or
// -engines names exit with status 2 and print the valid names.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"parsum/internal/bench"
	"parsum/internal/engine"
)

// validFigures lists every -figure value, in the order "all" runs them
// (engines, the registry listing, is skipped by "all").
var validFigures = []string{
	"f1", "f2", "f3", "pram", "cond", "em", "carry", "radix", "sigma",
	"combiner", "seq", "parallel", "ingest", "wire", "stream", "keyed",
	"engines",
}

func main() {
	var (
		figure    = flag.String("figure", "all", "which experiment to run: "+strings.Join(validFigures, " ")+" all")
		sizes     = flag.String("sizes", "1000000,10000000,100000000", "comma-separated input sizes for figure 1")
		n         = flag.Int64("n", 10_000_000, "input size for figures 2 and 3")
		delta     = flag.Int("delta", 2000, "exponent-range parameter δ for figures 1 and 3")
		deltas    = flag.String("deltas", "10,30,50,100,300,500,1000,2000", "δ sweep for figure 2")
		workers   = flag.Int("workers", 32, "modeled cluster size")
		workerSet = flag.String("workerlist", "1,2,4,8,16,32", "cluster-size sweep for figure 3")
		split     = flag.Int("split", 1<<20, "elements per input split")
		seed      = flag.Uint64("seed", 1, "dataset seed")
		quick     = flag.Bool("quick", false, "shrink sizes for a fast smoke run")
		engines   = flag.String("engines", "dense,sparse,small,large", "engines for the parallel and ingest figures")
		batches   = flag.String("batches", "1,64,4096", "batch-size sweep for the ingest figure")
		reps      = flag.Int("reps", 3, "repetitions per parallel/ingest/wire/stream cell (best-of)")
		parts     = flag.Int("parts", 64, "combiner partials for the wire figure")
		slots     = flag.String("slots", "1,4,16", "slot-count sweep for the stream figure")
		buckets   = flag.String("buckets", "1024,65536", "bucket-size (values per eviction) sweep for the stream figure")
		partsList = flag.String("partitions", "1,4,16", "partition-count sweep for the keyed figure")
		keyCounts = flag.String("keys", "16,1024", "key-population sweep for the keyed figure")
		jsonOut   = flag.String("jsonout", "", "write the parallel, ingest, or stream figure's snapshot as JSON to this file")
	)
	flag.Parse()

	cfg := bench.Defaults()
	cfg.Workers = *workers
	cfg.SplitSize = *split
	cfg.Seed = *seed

	szs := parseInts64(*sizes)
	dls := parseInts(*deltas)
	wl := parseInts(*workerSet)
	nn := *n
	if *quick {
		szs = []int64{100_000, 1_000_000}
		nn = 1_000_000
		cfg.SplitSize = 1 << 16
	}

	show := func(ts ...bench.Table) {
		for _, t := range ts {
			fmt.Println(t.Format())
		}
	}
	// checkEngines resolves the -engines flag, exiting with the registry's
	// valid names on an unknown engine. When needSharded is set it also
	// requires the capabilities the sharded ingestion layer needs.
	checkEngines := func(needSharded bool) []string {
		names := splitNames(*engines)
		for _, nm := range names {
			e, ok := engine.Get(nm)
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown engine %q (known: %s)\n", nm, strings.Join(engine.Names(), ", "))
				os.Exit(2)
			}
			if caps := e.Caps(); needSharded && (!caps.Streaming || !caps.DeterministicParallel) {
				fmt.Fprintf(os.Stderr, "engine %q cannot back sharded ingestion (needs Streaming and DeterministicParallel)\n", nm)
				os.Exit(2)
			}
		}
		return names
	}
	writeJSON := func(data []byte, err error) {
		if err != nil {
			fmt.Fprintf(os.Stderr, "encoding snapshot: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", *jsonOut, err)
			os.Exit(1)
		}
		fmt.Printf("snapshot written to %s\n", *jsonOut)
	}
	run := func(name string) {
		switch name {
		case "f1":
			show(bench.Figure1(szs, *delta, cfg)...)
		case "f2":
			show(bench.Figure2(nn, dls, cfg)...)
		case "f3":
			show(bench.Figure3(nn, *delta, wl, cfg)...)
		case "pram":
			show(bench.PRAMTable([]int{64, 256, 1024, 4096}, 32))
		case "cond":
			show(bench.CondTable(20000, []int{0, 100, 200, 300, 400, 500, 700, 900}))
		case "em":
			show(bench.EMTable([]int64{10_000, 40_000, 160_000, 640_000}, 256, 2048))
		case "carry":
			show(bench.CarryTable([]uint{8, 16, 24, 32}, 256))
		case "radix":
			sz := nn
			if *quick {
				sz = 1_000_000
			}
			show(bench.RadixTable([]uint{8, 16, 24, 32}, sz))
		case "combiner":
			show(bench.CombinerTable(nn, cfg))
		case "sigma":
			sz := nn
			if *quick {
				sz = 100_000
			}
			show(bench.SigmaTable(sz, dls))
		case "seq":
			sz := nn
			if *quick {
				sz = 1_000_000
			}
			show(bench.SeqTable(sz, *delta)...)
		case "parallel":
			sz := nn
			if *quick {
				sz = 1_000_000
			}
			if ncpu := runtime.NumCPU(); maxInts(wl) > ncpu {
				fmt.Fprintf(os.Stderr, "warning: -workerlist goes up to %d but the machine has %d CPU(s); oversubscribed cells measure scheduling overhead, not scalability\n",
					maxInts(wl), ncpu)
			}
			snap := bench.ParallelBench(sz, *delta, wl, checkEngines(false), *reps)
			show(snap.Table())
			if *jsonOut != "" {
				data, err := snap.JSON()
				writeJSON(data, err)
			}
		case "ingest":
			sz := nn
			if *quick {
				sz = 1_000_000
			}
			bs := parseInts(*batches)
			for _, v := range append(append([]int{}, wl...), bs...) {
				if v < 1 {
					fmt.Fprintf(os.Stderr, "ingest writer counts and batch sizes must be >= 1 (got %d)\n", v)
					os.Exit(2)
				}
			}
			snap := bench.IngestBench(sz, *delta, wl, bs, checkEngines(true), *reps)
			show(snap.Table())
			if *jsonOut != "" {
				data, err := snap.JSON()
				writeJSON(data, err)
			}
		case "stream":
			sz := nn
			if *quick {
				sz = 1_000_000
			}
			sl := parseInts(*slots)
			bk := parseInts(*buckets)
			for _, v := range append(append([]int{}, sl...), bk...) {
				if v < 1 {
					fmt.Fprintf(os.Stderr, "stream slot counts and bucket sizes must be >= 1 (got %d)\n", v)
					os.Exit(2)
				}
			}
			names := checkEngines(true)
			for _, nm := range names {
				if !engine.MustGet(nm).Caps().Invertible {
					fmt.Fprintf(os.Stderr, "engine %q cannot back a sliding window (needs Invertible)\n", nm)
					os.Exit(2)
				}
			}
			snap := bench.StreamBench(sz, *delta, sl, bk, names, *reps)
			show(snap.Table())
			if *jsonOut != "" {
				data, err := snap.JSON()
				writeJSON(data, err)
			}
		case "keyed":
			sz := nn
			if *quick {
				sz = 1_000_000
			}
			pl := parseInts(*partsList)
			kc := parseInts(*keyCounts)
			for _, v := range append(append([]int{}, pl...), kc...) {
				if v < 1 {
					fmt.Fprintf(os.Stderr, "keyed partition and key counts must be >= 1 (got %d)\n", v)
					os.Exit(2)
				}
			}
			snap := bench.KeyedBench(sz, *delta, pl, kc, checkEngines(true), *reps)
			show(snap.Table())
			if *jsonOut != "" {
				data, err := snap.JSON()
				writeJSON(data, err)
			}
		case "wire":
			sz := nn
			if *quick {
				sz = 1_000_000
			}
			if *parts < 1 {
				fmt.Fprintf(os.Stderr, "wire partial count must be >= 1 (got %d)\n", *parts)
				os.Exit(2)
			}
			show(bench.WireBench(sz, *delta, checkEngines(false), *parts, *reps))
		case "engines":
			listEngines()
		default:
			fmt.Fprintf(os.Stderr, "unknown figure %q (valid: %s, all)\n", name, strings.Join(validFigures, ", "))
			os.Exit(2)
		}
	}
	if *figure == "all" {
		for _, f := range validFigures {
			if f == "engines" {
				continue // the registry listing is not an experiment
			}
			run(f)
		}
		return
	}
	for _, f := range strings.Split(*figure, ",") {
		run(strings.TrimSpace(f))
	}
}

// listEngines prints the summation-engine registry with capability flags.
func listEngines() {
	fmt.Printf("%-12s %-8s %s\n", "ENGINE", "CAPS", "DESCRIPTION")
	for _, e := range engine.All() {
		c := e.Caps()
		flags := ""
		for _, f := range []struct {
			on bool
			ch string
		}{{c.Exact, "E"}, {c.CorrectlyRounded, "R"}, {c.Faithful, "F"}, {c.DeterministicParallel, "P"}, {c.Streaming, "S"}, {c.Invertible, "I"}} {
			if f.on {
				flags += f.ch
			} else {
				flags += "-"
			}
		}
		fmt.Printf("%-12s %-8s %s\n", e.Name(), flags, e.Doc())
	}
	fmt.Println("caps: E=exact R=correctly-rounded F=faithful P=deterministic-parallel S=streaming I=invertible")
}

func splitNames(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func parseInts(s string) []int {
	var out []int
	for _, p := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad integer %q\n", p)
			os.Exit(2)
		}
		out = append(out, v)
	}
	return out
}

func maxInts(vs []int) int {
	m := 0
	for _, v := range vs {
		if v > m {
			m = v
		}
	}
	return m
}

func parseInts64(s string) []int64 {
	var out []int64
	for _, v := range parseInts(s) {
		out = append(out, int64(v))
	}
	return out
}
