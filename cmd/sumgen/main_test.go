package main

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"strconv"
	"testing"

	"parsum/internal/gen"
)

func TestParseDist(t *testing.T) {
	cases := map[string]gen.Dist{
		"condone": gen.CondOne, "c1": gen.CondOne, "positive": gen.CondOne,
		"random": gen.Random, "mixed": gen.Random, "RANDOM": gen.Random,
		"anderson": gen.Anderson, "Anderson": gen.Anderson,
		"sumzero": gen.SumZero, "zero": gen.SumZero,
	}
	for name, want := range cases {
		got, ok := parseDist(name)
		if !ok || got != want {
			t.Errorf("parseDist(%q) = %v, %v; want %v, true", name, got, ok, want)
		}
	}
	for _, bad := range []string{"", "gaussian", "rand om"} {
		if _, ok := parseDist(bad); ok {
			t.Errorf("parseDist(%q) accepted", bad)
		}
	}
}

// TestEmitTextRoundTrips: the text output must parse back to the exact
// bits the generator produced — FormatFloat 'g'/-1 is the shortest
// round-trippable form.
func TestEmitTextRoundTrips(t *testing.T) {
	for _, d := range gen.AllDists {
		src := gen.New(gen.Config{Dist: d, N: 500, Delta: 300, Seed: 9})
		var buf bytes.Buffer
		if err := emit(&buf, src, "text"); err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(&buf)
		var i int64
		for ; sc.Scan(); i++ {
			v, err := strconv.ParseFloat(sc.Text(), 64)
			if err != nil {
				t.Fatalf("%v line %d: %v", d, i, err)
			}
			if want := src.At(i); math.Float64bits(v) != math.Float64bits(want) {
				t.Fatalf("%v line %d: parsed %g, generated %g", d, i, v, want)
			}
		}
		if i != 500 {
			t.Fatalf("%v: emitted %d lines, want 500", d, i)
		}
	}
}

// TestEmitBinRoundTrips: binary output is exactly 8·n bytes of
// little-endian float64 bits.
func TestEmitBinRoundTrips(t *testing.T) {
	src := gen.New(gen.Config{Dist: gen.Random, N: 777, Delta: 500, Seed: 4})
	var buf bytes.Buffer
	if err := emit(&buf, src, "bin"); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if len(b) != 777*8 {
		t.Fatalf("binary output %d bytes, want %d", len(b), 777*8)
	}
	for i := int64(0); i < 777; i++ {
		got := binary.LittleEndian.Uint64(b[i*8:])
		if want := math.Float64bits(src.At(i)); got != want {
			t.Fatalf("value %d: bits %x, want %x", i, got, want)
		}
	}
}

// TestEmitChunkBoundaries: datasets larger than the internal chunk buffer
// must stream seamlessly across chunk boundaries (Fill is offset-
// addressable, so boundaries cannot show in the output).
func TestEmitChunkBoundaries(t *testing.T) {
	const n = (1 << 16) + 37 // one full chunk plus a partial one
	src := gen.New(gen.Config{Dist: gen.SumZero, N: n, Delta: 100, Seed: 2})
	var buf bytes.Buffer
	if err := emit(&buf, src, "bin"); err != nil {
		t.Fatal(err)
	}
	if got := buf.Len(); got != n*8 {
		t.Fatalf("emitted %d bytes, want %d", got, n*8)
	}
	for _, i := range []int64{0, (1 << 16) - 1, 1 << 16, n - 1} {
		got := binary.LittleEndian.Uint64(buf.Bytes()[i*8:])
		if want := math.Float64bits(src.At(i)); got != want {
			t.Fatalf("boundary value %d: bits %x, want %x", i, got, want)
		}
	}
}

func TestEmitEmptyDataset(t *testing.T) {
	src := gen.New(gen.Config{Dist: gen.CondOne, N: 0, Delta: 100, Seed: 1})
	var buf bytes.Buffer
	if err := emit(&buf, src, "text"); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("empty dataset emitted %q", buf.String())
	}
}

// errWriter fails after a fixed number of bytes, so emit's error paths
// (both the payload write and the newline write) are exercised.
type errWriter struct{ room int }

func (w *errWriter) Write(p []byte) (int, error) {
	if len(p) > w.room {
		n := w.room
		w.room = 0
		return n, errors.New("writer full")
	}
	w.room -= len(p)
	return len(p), nil
}

func TestEmitPropagatesWriteErrors(t *testing.T) {
	src := gen.New(gen.Config{Dist: gen.Random, N: 100, Delta: 50, Seed: 3})
	for _, format := range []string{"text", "bin"} {
		for _, room := range []int{0, 5, 21} {
			if err := emit(&errWriter{room: room}, src, format); err == nil {
				t.Errorf("format=%s room=%d: write error swallowed", format, room)
			}
		}
	}
}
