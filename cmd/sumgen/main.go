// Command sumgen generates the paper's four evaluation datasets (after
// Zhu & Hayes) to stdout, as decimal text (one number per line) or raw
// little-endian float64 binary.
//
// Usage:
//
//	sumgen -dist sumzero -n 1000000 -delta 2000 -seed 7 > data.txt
//	sumgen -dist anderson -n 1000000 -format bin > data.f64
package main

import (
	"bufio"
	"encoding/binary"
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"parsum/internal/gen"
)

func main() {
	var (
		dist   = flag.String("dist", "random", "distribution: condone | random | anderson | sumzero")
		n      = flag.Int64("n", 1_000_000, "number of values")
		delta  = flag.Int("delta", 2000, "exponent-range parameter δ")
		seed   = flag.Uint64("seed", 1, "PRNG seed")
		format = flag.String("format", "text", "output format: text | bin")
	)
	flag.Parse()

	var d gen.Dist
	switch strings.ToLower(*dist) {
	case "condone", "c1", "positive":
		d = gen.CondOne
	case "random", "mixed":
		d = gen.Random
	case "anderson":
		d = gen.Anderson
	case "sumzero", "zero":
		d = gen.SumZero
	default:
		fmt.Fprintf(os.Stderr, "unknown distribution %q\n", *dist)
		os.Exit(2)
	}

	src := gen.New(gen.Config{Dist: d, N: *n, Delta: *delta, Seed: *seed})
	w := bufio.NewWriterSize(os.Stdout, 1<<20)
	defer w.Flush()

	buf := make([]float64, 1<<16)
	var le [8]byte
	for off := int64(0); off < *n; off += int64(len(buf)) {
		chunk := buf
		if rem := *n - off; rem < int64(len(buf)) {
			chunk = buf[:rem]
		}
		src.Fill(chunk, off)
		for _, x := range chunk {
			if *format == "bin" {
				binary.LittleEndian.PutUint64(le[:], math.Float64bits(x))
				if _, err := w.Write(le[:]); err != nil {
					fail(err)
				}
			} else {
				if _, err := w.WriteString(strconv.FormatFloat(x, 'g', -1, 64)); err != nil {
					fail(err)
				}
				if err := w.WriteByte('\n'); err != nil {
					fail(err)
				}
			}
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "sumgen:", err)
	os.Exit(1)
}
