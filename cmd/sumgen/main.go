// Command sumgen generates the paper's four evaluation datasets (after
// Zhu & Hayes) to stdout, as decimal text (one number per line) or raw
// little-endian float64 binary.
//
// Usage:
//
//	sumgen -dist sumzero -n 1000000 -delta 2000 -seed 7 > data.txt
//	sumgen -dist anderson -n 1000000 -format bin > data.f64
package main

import (
	"bufio"
	"encoding/binary"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"

	"parsum/internal/gen"
)

func main() {
	var (
		dist   = flag.String("dist", "random", "distribution: condone | random | anderson | sumzero")
		n      = flag.Int64("n", 1_000_000, "number of values")
		delta  = flag.Int("delta", 2000, "exponent-range parameter δ")
		seed   = flag.Uint64("seed", 1, "PRNG seed")
		format = flag.String("format", "text", "output format: text | bin")
	)
	flag.Parse()

	d, ok := parseDist(*dist)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown distribution %q (valid: condone, random, anderson, sumzero)\n", *dist)
		os.Exit(2)
	}
	if *format != "text" && *format != "bin" {
		fmt.Fprintf(os.Stderr, "unknown format %q (valid: text, bin)\n", *format)
		os.Exit(2)
	}

	w := bufio.NewWriterSize(os.Stdout, 1<<20)
	src := gen.New(gen.Config{Dist: d, N: *n, Delta: *delta, Seed: *seed})
	if err := emit(w, src, *format); err != nil {
		fail(err)
	}
	if err := w.Flush(); err != nil {
		fail(err)
	}
}

// parseDist resolves a distribution name (with the historical aliases) to
// its gen.Dist.
func parseDist(name string) (gen.Dist, bool) {
	switch strings.ToLower(name) {
	case "condone", "c1", "positive":
		return gen.CondOne, true
	case "random", "mixed":
		return gen.Random, true
	case "anderson":
		return gen.Anderson, true
	case "sumzero", "zero":
		return gen.SumZero, true
	}
	return 0, false
}

// emit streams the whole dataset to w in the given format ("text" decimal
// lines or "bin" raw little-endian float64), generating in fixed-size
// chunks so memory stays flat for any n.
func emit(w io.Writer, src *gen.Source, format string) error {
	n := src.Config().N
	buf := make([]float64, 1<<16)
	var le [8]byte
	nl := []byte{'\n'} // hoisted: a per-line []byte literal would escape through the interface
	for off := int64(0); off < n; off += int64(len(buf)) {
		chunk := buf
		if rem := n - off; rem < int64(len(buf)) {
			chunk = buf[:rem]
		}
		src.Fill(chunk, off)
		for _, x := range chunk {
			if format == "bin" {
				binary.LittleEndian.PutUint64(le[:], math.Float64bits(x))
				if _, err := w.Write(le[:]); err != nil {
					return err
				}
			} else {
				if _, err := io.WriteString(w, strconv.FormatFloat(x, 'g', -1, 64)); err != nil {
					return err
				}
				if _, err := w.Write(nl); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "sumgen:", err)
	os.Exit(1)
}
