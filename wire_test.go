package parsum_test

import (
	"math"
	"testing"

	"parsum"
	"parsum/internal/gen"
	"parsum/internal/oracle"
)

// TestAccumulatorBinaryRoundTrip: the public marshal surface — encode a
// partial, decode into a zero Accumulator, and the exact value (and the
// backing engine) survives.
func TestAccumulatorBinaryRoundTrip(t *testing.T) {
	for _, eng := range []string{"dense", "sparse", "small", "large"} {
		acc, err := parsum.NewAccumulatorEngine(eng)
		if err != nil {
			t.Fatal(err)
		}
		xs := gen.New(gen.Config{Dist: gen.SumZero, N: 3000, Delta: 1200, Seed: 31}).Slice()
		acc.AddSlice(xs[:1500])

		blob, err := acc.MarshalBinary()
		if err != nil {
			t.Fatalf("%s: %v", eng, err)
		}
		var back parsum.Accumulator
		if err := back.UnmarshalBinary(blob); err != nil {
			t.Fatalf("%s: %v", eng, err)
		}
		if back.Engine() != eng {
			t.Fatalf("engine %q decoded as %q", eng, back.Engine())
		}
		// The decoded accumulator keeps accumulating and merging exactly.
		back.AddSlice(xs[1500:])
		want := oracle.Sum(xs)
		if got := back.Round(); got != want {
			t.Fatalf("%s: resumed sum=%g oracle=%g", eng, got, want)
		}
		other, err := parsum.NewAccumulatorEngine(eng)
		if err != nil {
			t.Fatal(err)
		}
		other.Merge(&back)
		if got := other.Round(); got != want {
			t.Fatalf("%s: merge of decoded=%g oracle=%g", eng, got, want)
		}
	}
}

// TestAccumulatorMergeMixedEnginesPanics pins the documented failure mode
// for merging a decoded partial of a different engine: a clear panic, not
// a representation-level type assertion.
func TestAccumulatorMergeMixedEnginesPanics(t *testing.T) {
	dense := parsum.NewAccumulator()
	small, err := parsum.NewAccumulatorEngine("small")
	if err != nil {
		t.Fatal(err)
	}
	blob, err := small.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var decoded parsum.Accumulator
	if err := decoded.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Merge of mixed engines did not panic")
		}
	}()
	dense.Merge(&decoded)
}

func TestAccumulatorUnmarshalRejectsGarbage(t *testing.T) {
	var a parsum.Accumulator
	for _, data := range [][]byte{nil, {0}, {0xC7}, {0xC7, 1, 5, 'x'}, make([]byte, 64)} {
		if err := a.UnmarshalBinary(data); err == nil {
			t.Errorf("garbage % x accepted", data)
		}
	}
}

// TestShardedWireExchange: the public distributed story end to end in one
// process — worker Shardeds export SnapshotBytes, a reducer Sharded merges
// them, and the result carries the oracle's exact bits.
func TestShardedWireExchange(t *testing.T) {
	xs := gen.New(gen.Config{Dist: gen.Random, N: 20000, Delta: 1500, Seed: 32}).Slice()
	reducer, err := parsum.NewSharded(parsum.ShardedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	const workers = 5
	per := len(xs) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*per, (w+1)*per
		if w == workers-1 {
			hi = len(xs)
		}
		worker, err := parsum.NewSharded(parsum.ShardedOptions{Shards: 2})
		if err != nil {
			t.Fatal(err)
		}
		worker.AddBatch(xs[lo:hi])
		blob, err := worker.SnapshotBytes()
		if err != nil {
			t.Fatal(err)
		}
		if err := reducer.MergeBytes(blob); err != nil {
			t.Fatal(err)
		}
	}
	want := parsum.Sum(xs)
	got := reducer.Sum()
	if math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("distributed=%g (bits %x) sequential=%g (bits %x)",
			got, math.Float64bits(got), want, math.Float64bits(want))
	}
}
