#!/bin/sh
# wal_smoke.sh — kill -9 recovery smoke for the sumd write-ahead log.
#
# Starts a -wal daemon, pushes a batch whose exact sum is 3.75, SIGKILLs
# the process (no shutdown hook runs, no Close, no final fsync beyond
# what each ack already guaranteed), restarts on the same directory, and
# demands the identical sum back. Exercises the real binary end to end —
# the in-process crash matrix cannot catch a flag-wiring or recovery-
# ordering bug in cmd/sumd itself.
#
# Usage: scripts/wal_smoke.sh [bind-addr]
set -eu

ADDR="${1:-127.0.0.1:19723}"
DIR="$(mktemp -d)"
BIN="$DIR/sumd"
trap 'kill -9 "$PID" 2>/dev/null || true; rm -rf "$DIR"' EXIT

go build -o "$BIN" ./cmd/sumd

wait_up() {
    for _ in $(seq 1 100); do
        if curl -fsS "http://$ADDR/v1/healthz" >/dev/null 2>&1; then
            return 0
        fi
        sleep 0.1
    done
    echo "wal_smoke: daemon on $ADDR never became healthy" >&2
    exit 1
}

"$BIN" -addr "$ADDR" -shards 2 -wal "$DIR/wal" -fsync always &
PID=$!
wait_up
curl -fsS -X POST "http://$ADDR/v1/add" \
    -H 'Content-Type: application/json' -d '{"values":[1.5,2.25]}' >/dev/null

kill -9 "$PID"
wait "$PID" 2>/dev/null || true

"$BIN" -addr "$ADDR" -shards 2 -wal "$DIR/wal" -fsync always &
PID=$!
wait_up
SUM="$(curl -fsS "http://$ADDR/v1/sum")"
kill "$PID" 2>/dev/null || true
wait "$PID" 2>/dev/null || true

case "$SUM" in
*'"sum":"3.75"'*)
    echo "wal_smoke: ok — recovered $SUM"
    ;;
*)
    echo "wal_smoke: FAIL — after kill -9 the daemon served $SUM, want sum 3.75" >&2
    exit 1
    ;;
esac
