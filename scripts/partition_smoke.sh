#!/bin/sh
# partition_smoke.sh — partition/wipe convergence smoke for the sumproxy
# fleet, end to end over real processes and real sockets.
#
# Starts three sumd backends and one sumproxy (replication 3, quorum
# acks), pushes 20 keyed writes of [0.5, 0.25] spread over 4 keys (five
# writes per key — every key's exact sum is 3.75), SIGKILLs backend 2
# mid-ingest (half the writes land while it is a corpse), restarts it
# EMPTY (no WAL — a lost disk), drives anti-entropy repair through the
# proxy, and then demands the identical per-key sum string from all
# three backends directly. Exercises the real binaries — the in-process
# gauntlet cannot catch a flag-wiring bug in cmd/sumproxy itself.
#
# Usage: scripts/partition_smoke.sh [base-port]
set -eu

PORT="${1:-19731}"
B1="127.0.0.1:$PORT"
B2="127.0.0.1:$((PORT + 1))"
B3="127.0.0.1:$((PORT + 2))"
PX="127.0.0.1:$((PORT + 3))"
DIR="$(mktemp -d)"
trap 'kill -9 "$P1" "$P2" "$P3" "$PP" 2>/dev/null || true; rm -rf "$DIR"' EXIT

go build -o "$DIR/sumd" ./cmd/sumd
go build -o "$DIR/sumproxy" ./cmd/sumproxy

wait_up() {
    for _ in $(seq 1 100); do
        if curl -fsS "http://$1/v1/healthz" >/dev/null 2>&1; then
            return 0
        fi
        sleep 0.1
    done
    echo "partition_smoke: $1 never became healthy" >&2
    exit 1
}

"$DIR/sumd" -addr "$B1" -shards 2 &
P1=$!
"$DIR/sumd" -addr "$B2" -shards 2 &
P2=$!
"$DIR/sumd" -addr "$B3" -shards 2 &
P3=$!
wait_up "$B1"
wait_up "$B2"
wait_up "$B3"

"$DIR/sumproxy" -addr "$PX" -backends "http://$B1,http://$B2,http://$B3" \
    -replication 3 -ack quorum -replay-every 100ms &
PP=$!
wait_up "$PX"

# write N: key k(N mod 4), values [0.5, 0.25], retried until acked
# (quorum survives one dead backend; the token keeps retries
# exactly-once).
write() {
    _key="k$(($1 % 4))"
    for _ in $(seq 1 50); do
        if curl -fsS -X POST "http://$PX/v1/add?key=$_key" \
            -H 'Content-Type: application/json' \
            -H "Idempotency-Key: smoke-$1" \
            -d '{"values":[0.5,0.25]}' >/dev/null 2>&1; then
            return 0
        fi
        sleep 0.1
    done
    echo "partition_smoke: write $1 never acked" >&2
    exit 1
}

i=0
while [ "$i" -lt 10 ]; do
    write "$i"
    i=$((i + 1))
done

# Kill backend 2 mid-ingest — no shutdown hook, no flush.
kill -9 "$P2"
wait "$P2" 2>/dev/null || true

while [ "$i" -lt 20 ]; do
    write "$i"
    i=$((i + 1))
done

# Restart backend 2 empty: everything it had is gone; everything it
# missed it never saw. Repair owes it both.
"$DIR/sumd" -addr "$B2" -shards 2 &
P2=$!
wait_up "$B2"

# Drive repair until a round comes back clean (the healed backend's
# circuit breaker may still be cooling down on the first try).
repaired=0
for _ in $(seq 1 50); do
    R="$(curl -fsS -X POST "http://$PX/v1/repair" 2>/dev/null || true)"
    case "$R" in
    *'"unreachable"'* | '' ) sleep 0.2 ;;
    *'"errors":0'*)
        repaired=1
        break
        ;;
    *) sleep 0.2 ;;
    esac
done
if [ "$repaired" != 1 ]; then
    echo "partition_smoke: repair never converged (last: $R)" >&2
    exit 1
fi

# Every backend, every key: the exact per-key sum, bit-identical
# (shortest-decimal rendering is bijective with the float64 bits).
for addr in "$B1" "$B2" "$B3"; do
    for k in k0 k1 k2 k3; do
        S="$(curl -fsS "http://$addr/v1/sum?key=$k")"
        case "$S" in
        *'"sum":"3.75"'*) ;;
        *)
            echo "partition_smoke: FAIL — $addr $k answered $S (want sum 3.75)" >&2
            exit 1
            ;;
        esac
    done
done

echo "partition_smoke: ok — 3 backends bit-identical on 4 keys after kill -9 + wipe + repair"
