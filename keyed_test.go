package parsum_test

import (
	"math"
	"testing"

	"parsum"
)

// TestKeyedPublicSurface exercises the exported wrapper end to end: per-
// key sums bit-identical to parsum.Sum, range rebalance, and the binary
// and per-key-partial exchange paths.
func TestKeyedPublicSurface(t *testing.T) {
	k, err := parsum.NewKeyed(parsum.KeyedOptions{Partitions: 3})
	if err != nil {
		t.Fatal(err)
	}
	if k.Engine() != "dense" || k.Partitions() != 3 || !k.Invertible() {
		t.Fatalf("defaults: engine=%q partitions=%d invertible=%v", k.Engine(), k.Partitions(), k.Invertible())
	}
	data := map[string][]float64{
		"alpha": {1e300, 1, -1e300},
		"beta":  {math.Inf(1), -2.5},
		"gamma": {5e-324, 5e-324, -5e-324},
	}
	for key, xs := range data {
		k.Add(key, xs)
	}
	k.Sub("alpha", []float64{1e-30})
	k.Add("alpha", []float64{1e-30})
	for key, xs := range data {
		got, ok := k.Sum(key)
		if !ok {
			t.Fatalf("key %q missing", key)
		}
		if want := parsum.Sum(xs); math.Float64bits(got) != math.Float64bits(want) {
			t.Errorf("Sum(%q) = %x, want %x", key, math.Float64bits(got), math.Float64bits(want))
		}
	}
	if got := k.Keys(); len(got) != 3 || got[0] != "alpha" {
		t.Fatalf("Keys = %v", got)
	}

	// Binary exchange into a second store with a different layout.
	blob, err := k.ExportRange("", "")
	if err != nil {
		t.Fatal(err)
	}
	k2, err := parsum.NewKeyed(parsum.KeyedOptions{Partitions: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := k2.ImportMerge(blob); err != nil {
		t.Fatal(err)
	}
	a, b := k.Snapshot(), k2.Snapshot()
	if len(a) != len(b) {
		t.Fatalf("snapshots differ in size: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] && !(math.IsNaN(a[i].Sum) && math.IsNaN(b[i].Sum) && a[i].Key == b[i].Key) {
			t.Errorf("snapshot[%d]: %+v vs %+v", i, a[i], b[i])
		}
	}

	// Per-key partials merge through the batch-of-envelopes path.
	ps, err := k.ExportPartials("b", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 2 {
		t.Fatalf("ExportPartials = %d entries, want 2", len(ps))
	}
	k3, err := parsum.NewKeyed(parsum.KeyedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := k3.MergeKeyPartials(ps); err != nil {
		t.Fatal(err)
	}
	if v, ok := k3.Sum("beta"); !ok || !math.IsInf(v, 1) {
		t.Errorf("merged beta = (%v, %v), want +Inf", v, ok)
	}

	// Rebalance: move [b, h) out of k.
	if n := k.DeleteRange("b", "h"); n != 2 {
		t.Errorf("DeleteRange = %d, want 2", n)
	}
	if k.Len() != 1 {
		t.Errorf("Len after rebalance = %d, want 1", k.Len())
	}
	k.Reset()
	if k.Len() != 0 {
		t.Errorf("Len after Reset = %d", k.Len())
	}

	// Grouped batch ingestion and store merge.
	k.AddKeyedBatches([]parsum.KeyedBatch{{Key: "m", Values: []float64{1, 2}}, {Key: "n", Values: []float64{3}}})
	k.SubKeyedBatches([]parsum.KeyedBatch{{Key: "m", Values: []float64{2}}})
	k3.Merge(k)
	if v, ok := k3.Sum("m"); !ok || v != 1 {
		t.Errorf("merged m = (%v, %v), want 1", v, ok)
	}

	if _, err := parsum.NewKeyed(parsum.KeyedOptions{Engine: "no-such-engine"}); err == nil {
		t.Error("unknown engine accepted")
	}
}
