// Sliding-window analytics: an exact moving sum and average over a live
// tick stream, with bit-reproducible results no matter how the window
// slides.
//
// A price-tick feed is summarized over the last `slots` buckets of `per`
// ticks each. Evicting an expired bucket is a single exact subtraction —
// the signed-digit superaccumulator is a group, so deletion is as exact as
// insertion — which makes every published moving sum bit-identical to
// re-summing the live window from scratch. The stream is deliberately
// hostile: magnitudes spanning hundreds of orders, exact cancellations,
// and occasional ±Inf spikes that must vanish without a trace once their
// bucket expires (a compensated scheme would be stuck at NaN forever).
//
// The demo verifies every published value against a from-scratch re-sum of
// the retained raw ticks and exits 1 on the first divergence.
//
// Run with:
//
//	go run ./examples/moving [-slots 6] [-per 5000] [-buckets 48]
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"

	"parsum"
	"parsum/internal/stream"
)

func main() {
	var (
		slots   = flag.Int("slots", 6, "buckets the window covers")
		per     = flag.Int("per", 5000, "ticks per bucket")
		buckets = flag.Int("buckets", 48, "total buckets to stream")
	)
	flag.Parse()

	w, err := stream.New(stream.Options{Slots: *slots})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("moving average over the last %d buckets × %d ticks (engine %q)\n\n",
		*slots, *per, w.Engine())
	fmt.Printf("%-8s %-12s %-24s %-24s %s\n", "bucket", "window", "moving sum", "moving mean", "verified")

	rng := rand.New(rand.NewSource(42))
	// live mirrors the window's retained raw ticks for verification.
	live := make([][]float64, 0, *slots)
	cur := []float64{}

	// One bucket in the middle of the run takes an infinity spike: the
	// window must report +Inf while that bucket is live and recover to
	// finite sums — exactly — the moment it expires.
	spikeBucket := *buckets / 2

	divergences := 0
	for b := 0; b < *buckets; b++ {
		for i := 0; i < *per; i++ {
			x := tick(rng)
			if b == spikeBucket && i == 0 {
				x = math.Inf(1)
			}
			w.Add(x)
			cur = append(cur, x)
		}
		// Close the bucket: the window evicts its oldest bucket with one
		// exact subtraction; the mirror drops the same raw ticks.
		live = append(live, cur)
		cur = nil
		w.Advance()
		// After an advance the window holds an empty current bucket plus
		// the last slots−1 closed buckets.
		if keep := *slots - 1; len(live) > keep {
			live = live[len(live)-keep:]
		}

		sum, n := w.Stats()
		mean := w.Mean()

		// From-scratch oracle over the retained raw ticks.
		var flat []float64
		for _, bk := range live {
			flat = append(flat, bk...)
		}
		want := parsum.Sum(flat)
		ok := math.Float64bits(sum) == math.Float64bits(want) ||
			(math.IsNaN(sum) && math.IsNaN(want))
		if !ok {
			divergences++
		}
		fmt.Printf("%-8d %-12s %-24s %-24s %v\n",
			b, fmt.Sprintf("%d ticks", n), fmtF(sum), fmtF(mean), ok)
	}

	if divergences > 0 {
		fmt.Printf("\nFAIL: %d window sums diverged from the from-scratch re-sum\n", divergences)
		os.Exit(1)
	}
	fmt.Println("\nevery moving sum was bit-identical to re-summing the live window from scratch")
}

// tick produces one hostile stream value: mixed-sign magnitudes across
// ~200 orders, full-magnitude spikes, and denormals.
func tick(rng *rand.Rand) float64 {
	switch rng.Intn(100) {
	case 0, 1:
		// Near-top-of-range spikes; scaled so a window's exact sum stays
		// finite while naive partial sums would still be destroyed.
		return math.MaxFloat64 / (1 << 16) * sign(rng)
	case 2, 3:
		return math.SmallestNonzeroFloat64 * sign(rng)
	default:
		return (rng.Float64() - 0.5) * math.Pow(10, float64(rng.Intn(200)-100))
	}
}

func sign(rng *rand.Rand) float64 {
	if rng.Intn(2) == 0 {
		return -1
	}
	return 1
}

func fmtF(v float64) string {
	return fmt.Sprintf("%-.12g", v)
}
