// Statistics: exact dot products, means, and variances on top of exact
// summation — the "large-scale simulations" use case from the paper's
// abstract, where accumulated roundoff corrupts summary statistics.
//
// The textbook one-pass variance formula Var = (n·Σx² − (Σx)²)/n² is
// famously unstable: for data with a large mean and tiny spread the two
// terms nearly cancel, and float64 arithmetic can even report a *negative*
// variance. Rounding Σx and Σx² before subtracting does not help — the
// cancellation amplifies those roundings. The fix is to keep everything
// exact through the cancellation: accumulate n·x² exactly (TwoProd),
// extract Σx as an exact multi-term expansion, square that expansion
// exactly, subtract inside the superaccumulator, and round once at the
// end.
//
// Run with:
//
//	go run ./examples/statistics
package main

import (
	"fmt"
	"math"
	"math/rand"

	"parsum"
	"parsum/internal/eft"
)

// exactDot accumulates Σ uᵢ·vᵢ exactly: TwoProd splits every product into
// a rounded part and its exact error, both of which go into the
// superaccumulator.
func exactDot(u, v []float64) *parsum.Accumulator {
	acc := parsum.NewAccumulator()
	for i := range u {
		p, e := eft.TwoProd(u[i], v[i])
		acc.Add(p)
		acc.Add(e)
	}
	return acc
}

// expansion extracts the exact value of acc as a short list of float64s
// (repeated round-and-subtract; the accumulator is consumed).
func expansion(acc *parsum.Accumulator) []float64 {
	var terms []float64
	for i := 0; i < 40; i++ {
		r := acc.Round()
		if r == 0 {
			break
		}
		terms = append(terms, r)
		acc.Add(-r)
	}
	return terms
}

// exactVariance computes Var = (n·Σx² − (Σx)²)/n² with the subtraction
// performed on exact quantities; only the final division rounds.
func exactVariance(xs []float64) float64 {
	n := float64(len(xs))
	d := parsum.NewAccumulator()
	// n·Σx², exactly: x², then ×n, all error-free.
	for _, x := range xs {
		p, e := eft.TwoProd(x, x)
		for _, term := range []float64{p, e} {
			hi, lo := eft.TwoProd(term, n)
			d.Add(hi)
			d.Add(lo)
		}
	}
	// −(Σx)², exactly: Σx as an exact expansion, squared term by term.
	s := parsum.NewAccumulator()
	s.AddSlice(xs)
	terms := expansion(s)
	for _, a := range terms {
		for _, b := range terms {
			hi, lo := eft.TwoProd(a, b)
			d.Add(-hi)
			d.Add(-lo)
		}
	}
	return d.Round() / (n * n)
}

func main() {
	// Sensor-style data: large offset, tiny fluctuations.
	const n = 2_000_000
	const mean = 1e9
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = mean + rng.NormFloat64() // true variance ≈ 1
	}

	// Naive one-pass: everything in float64.
	var s, s2 float64
	for _, x := range xs {
		s += x
		s2 += x * x
	}
	naiveVar := s2/n - (s/n)*(s/n)

	// Half-measure: exact sums, but rounded before the cancellation.
	sumAcc := parsum.NewAccumulator()
	sumAcc.AddSlice(xs)
	exMean := sumAcc.Round() / n
	halfVar := exactDot(xs, xs).Round()/n - exMean*exMean

	exVar := exactVariance(xs)

	// Two-pass reference.
	var tp float64
	for _, x := range xs {
		d := x - exMean
		tp += d * d
	}
	twoPass := tp / n

	fmt.Printf("n = %d, data = %g + N(0,1), true variance ≈ 1\n\n", n, mean)
	fmt.Printf("one-pass, float64 sums:             %-12g (garbage, sign can even flip)\n", naiveVar)
	fmt.Printf("one-pass, exact sums rounded early: %-12g (rounding before cancelling)\n", halfVar)
	fmt.Printf("one-pass, exact through cancel:     %.15g\n", exVar)
	fmt.Printf("two-pass reference:                 %.15g\n", twoPass)
	fmt.Printf("|one-pass-exact − two-pass|:        %.3g\n\n", math.Abs(exVar-twoPass))

	// Exact dot products: a classic cancelling case where the float64 dot
	// product is off by 8 units while the exact one is … exact.
	u := []float64{1e14 + 3, -1e14 + 1}
	v := []float64{1e14 - 3, 1e14 + 1}
	var fl float64
	for i := range u {
		fl += u[i] * v[i]
	}
	fmt.Println("dot([1e14+3, −1e14+1], [1e14−3, 1e14+1]) — true value −8:")
	fmt.Println("  float64:", fl)
	fmt.Println("  exact:  ", exactDot(u, v).Round())
}
