// Ingestion at scale: many concurrent clients stream measurements into
// one sharded accumulator while a monitor takes live snapshots — the
// "service" shape of exact summation, where the paper's carry-free
// superaccumulator representation is what makes concurrency harmless.
//
// Each client goroutine pushes batches of telemetry readings (mixed
// signs, wildly varying magnitudes — the kind of data that corrupts a
// naive running total) through its own shard-pinned writer. Snapshots
// taken mid-stream never stop the writers: the accumulator hands every
// shard a fresh pooled superaccumulator and folds the old ones through a
// log-depth merge tree. Because every partial is exact, the final total
// is bit-identical to summing the same readings one-by-one on a single
// goroutine — no matter how the clients interleaved.
//
// Run with:
//
//	go run ./examples/ingest
package main

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"parsum"
)

const (
	clients   = 16
	batches   = 200 // per client
	batchSize = 500
)

func main() {
	fmt.Printf("%d clients × %d batches × %d readings, ingested concurrently\n\n",
		clients, batches, batchSize)

	// Pre-generate every client's readings so we can afterwards compute
	// the single-goroutine reference sum over the identical multiset.
	data := make([][]float64, clients)
	for c := range data {
		rng := rand.New(rand.NewSource(int64(c) + 1))
		readings := make([]float64, batches*batchSize)
		for i := range readings {
			// Mixed-sign values spanning ~180 orders of magnitude.
			readings[i] = (rng.Float64() - 0.5) * math.Pow(10, float64(rng.Intn(180)-90))
		}
		data[c] = readings
	}

	acc, err := parsum.NewSharded(parsum.ShardedOptions{Shards: clients})
	if err != nil {
		panic(err)
	}

	// The monitor polls live totals while ingestion is running; writers
	// never block on it beyond a per-shard pointer swap.
	done := make(chan struct{})
	var monitorWg sync.WaitGroup
	monitorWg.Add(1)
	go func() {
		defer monitorWg.Done()
		polls := 0
		for {
			select {
			case <-done:
				fmt.Printf("monitor: took %d live snapshots during ingestion\n", polls)
				return
			default:
				_ = acc.Snapshot()
				polls++
			}
		}
	}()

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			w := acc.Writer() // shard-pinned: contention-free steady state
			for b := 0; b < batches; b++ {
				w.AddBatch(data[c][b*batchSize : (b+1)*batchSize])
			}
		}(c)
	}
	wg.Wait()
	close(done)
	monitorWg.Wait()

	total := acc.Sum()

	// Reference: the same readings, summed sequentially on one goroutine.
	var flat []float64
	for _, readings := range data {
		flat = append(flat, readings...)
	}
	reference := parsum.Sum(flat)
	naive := 0.0
	for _, x := range flat {
		naive += x
	}

	fmt.Printf("\nconcurrent sharded total: %.17g\n", total)
	fmt.Printf("sequential exact total:   %.17g\n", reference)
	fmt.Printf("bit-identical:            %v\n", math.Float64bits(total) == math.Float64bits(reference))
	fmt.Printf("naive left-to-right:      %.17g (off by %g)\n", naive, naive-reference)
}
