// Geometry: a robust 2-D orientation predicate built on exact summation.
//
// The orientation of three points is the sign of a 3×3 determinant. With
// plain floating-point arithmetic the sign is unreliable for
// nearly-collinear points — the motivating application the paper cites
// from computational geometry (Shewchuk's robust predicates). Here the
// determinant is expanded into six products; each product is computed
// exactly with an error-free transform (TwoProd), and the twelve resulting
// terms are summed exactly with a superaccumulator, so the sign is always
// correct.
//
// The demo classifies a grid of points near a segment: the naive predicate
// produces a noisy, self-contradictory classification band while the exact
// one draws a clean line. Run with:
//
//	go run ./examples/geometry
package main

import (
	"fmt"

	"parsum"
	"parsum/internal/eft"
)

// orientNaive returns the sign of det(b−a, c−a) computed with ordinary
// floating-point arithmetic.
func orientNaive(ax, ay, bx, by, cx, cy float64) int {
	det := (bx-ax)*(cy-ay) - (by-ay)*(cx-ax)
	switch {
	case det > 0:
		return 1
	case det < 0:
		return -1
	}
	return 0
}

// orientExact returns the exact sign of the orientation determinant:
//
//	det = bx·cy − bx·ay − ax·cy − by·cx + by·ax + ay·cx
//
// Each product contributes its rounded value and exact error via TwoProd;
// the exact sum of all twelve terms has the true sign.
func orientExact(ax, ay, bx, by, cx, cy float64) int {
	acc := parsum.NewAccumulator()
	add := func(sign, u, v float64) {
		p, e := eft.TwoProd(u, v)
		acc.Add(sign * p)
		acc.Add(sign * e)
	}
	add(+1, bx, cy)
	add(-1, bx, ay)
	add(-1, ax, cy)
	add(-1, by, cx)
	add(+1, by, ax)
	add(+1, ay, cx)
	det := acc.Round()
	switch {
	case det > 0:
		return 1
	case det < 0:
		return -1
	}
	return 0
}

func main() {
	// Points a and b define a line; classify c = base + (i·ε, j·ε) for a
	// grid of half-ulp-scale offsets around a point near the line.
	ax, ay := 12.0, 12.0
	bx, by := 24.0, 24.0
	const grid = 16
	eps := 0x1p-52

	fmt.Println("orientation of near-collinear points: naive vs exact")
	fmt.Println("(rows: grid of 2^-52-scale offsets; symbols: + left, - right, 0 on line)")
	var disagreements int
	for j := 0; j < grid; j++ {
		var naiveRow, exactRow []byte
		for i := 0; i < grid; i++ {
			cx := 0.5 + float64(i)*eps
			cy := 0.5 + float64(j)*eps
			n := orientNaive(ax, ay, bx, by, cx, cy)
			e := orientExact(ax, ay, bx, by, cx, cy)
			naiveRow = append(naiveRow, symbol(n))
			exactRow = append(exactRow, symbol(e))
			if n != e {
				disagreements++
			}
		}
		fmt.Printf("naive %s   exact %s\n", naiveRow, exactRow)
	}
	fmt.Printf("\nnaive predicate disagrees with the exact sign on %d of %d points\n",
		disagreements, grid*grid)
}

func symbol(s int) byte {
	switch s {
	case 1:
		return '+'
	case -1:
		return '-'
	}
	return '0'
}
