// Distributed exact aggregation: N workers each combine a slice of the
// input locally and push serialized exact partials to one sumd merge
// service over real HTTP — the paper's single-round MapReduce summation
// (map-side combiner → reducer) with the shuffle crossing an actual
// socket instead of a modeled one.
//
// The service's final sum is bit-identical to parsum.Sum of the whole
// input on one goroutine, because every hop exchanges exact
// (α,β)-regularized superaccumulator partials: the split, the flush
// cadence, and the arrival order cannot change a single bit.
//
// Run with:
//
//	go run ./examples/distributed [-workers 8] [-n 2000000] [-async]
//
// With -async the service runs the batched ingestion front-end and the
// workers ship raw value batches instead of combined partials: requests
// coalesce in the service's bounded queue, shed requests are retried on
// 429 with jittered backoff, and the final sum is STILL bit-identical —
// group commit makes batching invisible to the result.
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sync"
	"time"

	"parsum"
	"parsum/internal/sumdclient"
	"parsum/internal/sumdsrv"
)

func main() {
	var (
		workers = flag.Int("workers", 8, "worker count (each pushes its own partials)")
		n       = flag.Int("n", 2_000_000, "total input size")
		async   = flag.Bool("async", false, "ship raw batches through the batched ingestion front-end instead of combined partials")
	)
	flag.Parse()
	if *workers < 1 || *n < 1 {
		fail(fmt.Errorf("-workers and -n must be >= 1 (got %d, %d)", *workers, *n))
	}

	// The dataset: mixed-sign values spanning hundreds of orders of
	// magnitude — the shape that makes naive distributed summation depend
	// on placement and arrival order.
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, *n)
	for i := range xs {
		xs[i] = (rng.Float64() - 0.5) * math.Pow(10, float64(rng.Intn(300)-150))
	}

	// Start the merge service on a loopback socket, exactly as `sumd`
	// would run it as a standalone daemon.
	srv, err := sumdsrv.New(sumdsrv.Options{
		Shards: *workers,
		Async:  *async, // defaults for queue/batch/delay; see internal/batch
	})
	if err != nil {
		fail(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fail(err)
	}
	hs := &http.Server{Handler: srv}
	go func() { _ = hs.Serve(ln) }()
	defer hs.Close()
	url := "http://" + ln.Addr().String()
	fmt.Printf("sumd listening on %s\n", url)
	if *async {
		fmt.Printf("%d workers streaming %d values as raw batches through the async ingest queue\n\n", *workers, len(xs))
	} else {
		fmt.Printf("%d workers combining %d values, pushing exact partials over HTTP\n\n", *workers, len(xs))
	}

	start := time.Now()
	var wg sync.WaitGroup
	var wireBytes, retried int64
	var partials int
	var mu sync.Mutex
	per := len(xs) / *workers
	for w := 0; w < *workers; w++ {
		lo, hi := w*per, (w+1)*per
		if w == *workers-1 {
			hi = len(xs)
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			client := sumdclient.New(url, nil)
			if *async {
				// Raw batches into the bounded queue; a shed batch left no
				// trace, so the client blindly re-sends it with backoff.
				client.Retry429 = 100
				const chunk = 4096
				for at := lo; at < hi; at += chunk {
					end := at + chunk
					if end > hi {
						end = hi
					}
					if err := client.AddBatch(context.Background(), xs[at:end]); err != nil {
						fail(err)
					}
					mu.Lock()
					wireBytes += int64(8 * (end - at))
					partials++
					mu.Unlock()
				}
				mu.Lock()
				retried += client.Retried429()
				mu.Unlock()
				return
			}
			// Each worker is its own "process": a local exact combiner and
			// an HTTP client. Flush a few times mid-stream to show cadence
			// does not matter.
			acc := parsum.NewAccumulator()
			chunk := (hi - lo + 3) / 4
			for at := lo; at < hi; at += chunk {
				end := at + chunk
				if end > hi {
					end = hi
				}
				acc.AddSlice(xs[at:end])
				blob, err := acc.MarshalBinary()
				if err != nil {
					fail(err)
				}
				if err := client.PushPartial(context.Background(), blob); err != nil {
					fail(err)
				}
				mu.Lock()
				wireBytes += int64(len(blob))
				partials++
				mu.Unlock()
				acc.Reset()
			}
		}(w, lo, hi)
	}
	wg.Wait()

	client := sumdclient.New(url, nil)
	distributed, err := client.Sum(context.Background())
	if err != nil {
		fail(err)
	}
	elapsed := time.Since(start)

	sequential := parsum.Sum(xs)
	fmt.Printf("distributed sum: %.17g  (bits %016x)\n", distributed, math.Float64bits(distributed))
	fmt.Printf("sequential sum:  %.17g  (bits %016x)\n", sequential, math.Float64bits(sequential))
	if math.Float64bits(distributed) == math.Float64bits(sequential) {
		fmt.Println("bit-identical: YES")
	} else {
		fmt.Println("bit-identical: NO (this is a bug)")
		os.Exit(1)
	}
	if *async {
		fmt.Printf("\n%d batch requests, %d wire bytes, %d retried after 429, %.2fs\n",
			partials, wireBytes, retried, elapsed.Seconds())
		fmt.Println("the ingest queue coalesced whatever arrived together; group commit kept every bit")
	} else {
		fmt.Printf("\n%d partials, %d wire bytes total (raw input: %d bytes), %.2fs\n",
			partials, wireBytes, 8*len(xs), elapsed.Seconds())
		fmt.Println("the shuffle ships superaccumulator partials, not values: wire cost is per-worker, not per-element")
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "distributed:", err)
	os.Exit(1)
}
