// MapReduce: cluster-scale exact summation, the paper's Section 6 pipeline
// on the in-process simulated cluster.
//
// The job sums one of the paper's evaluation datasets with the single-round
// MapReduce algorithm: splits are combined into sparse superaccumulators by
// the map side, shuffled to reducers, merged carry-free, and rounded once
// by the driver. The demo prints the modeled cluster time as the cluster
// grows — the paper's Figure 3 in miniature — plus the shuffle-volume
// savings of the combiner.
//
// Run with:
//
//	go run ./examples/mapreduce [-n 4000000] [-delta 2000] [-dist sumzero]
package main

import (
	"flag"
	"fmt"
	"strings"

	"parsum"
	"parsum/internal/gen"
)

func main() {
	var (
		n     = flag.Int64("n", 4_000_000, "input size")
		delta = flag.Int("delta", 2000, "exponent-range parameter δ")
		dist  = flag.String("dist", "sumzero", "condone | random | anderson | sumzero")
	)
	flag.Parse()

	var d gen.Dist
	switch strings.ToLower(*dist) {
	case "condone":
		d = gen.CondOne
	case "random":
		d = gen.Random
	case "anderson":
		d = gen.Anderson
	default:
		d = gen.SumZero
	}
	fmt.Printf("generating %s dataset: n=%d δ=%d …\n", d, *n, *delta)
	xs := gen.New(gen.Config{Dist: d, N: *n, Delta: *delta, Seed: 7}).Slice()

	fmt.Println("\nscaling the simulated cluster (sparse superaccumulators):")
	fmt.Println("cores  cluster-time  map        reduce     shuffle")
	var base float64
	for _, w := range []int{1, 2, 4, 8, 16, 32} {
		res := parsum.MapReduceSum(xs, parsum.MRConfig{Workers: w, SplitSize: 1 << 17, Seed: 7})
		ct := res.Stats.ClusterTime().Seconds()
		if w == 1 {
			base = ct
		}
		fmt.Printf("%-5d  %8.3fs     %8.3fs  %8.3fs  %d recs / %d B   (%.1fx)\n",
			w, ct,
			res.Stats.MapMakespan.Seconds(), res.Stats.ReduceMakespan.Seconds(),
			res.Stats.ShuffleRecords, res.Stats.ShuffleBytes, base/ct)
	}

	res := parsum.MapReduceSum(xs, parsum.MRConfig{Workers: 8, SplitSize: 1 << 17, Seed: 7})
	noC := parsum.MapReduceSum(xs, parsum.MRConfig{Workers: 8, SplitSize: 1 << 17, Seed: 7, NoCombine: true})
	fmt.Printf("\ncombiner ablation at 8 cores: shuffle %d B with combiner vs %d B without\n",
		res.Stats.ShuffleBytes, noC.Stats.ShuffleBytes)
	fmt.Printf("\nexact sum: %g (bit-identical across all runs above: %v)\n",
		res.Sum, res.Sum == noC.Sum)
}
