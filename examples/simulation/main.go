// Simulation: conservation checking in a large-scale numerical simulation,
// the paper's motivating application domain.
//
// A toy system of particles exchanges energy in randomized transactions:
// each transaction moves an amount v from one particle to another, so the
// exact net change of total energy is zero by construction. The amounts
// span ~60 orders of magnitude (hot plasma next to cold dust), which makes
// the conservation check numerically brutal:
//
//   - a naive ⊕ tally of all the deltas drifts and reports spurious
//     energy creation;
//   - Kahan compensation helps but still fails at this spread;
//   - the exact superaccumulator reports exactly zero — and does so under
//     parallel reduction with bit-identical results for any worker count.
//
// Run with:
//
//	go run ./examples/simulation
package main

import (
	"fmt"
	"math"
	"math/rand"

	"parsum"
)

func main() {
	const (
		particles    = 1000
		transactions = 2_000_000
	)
	rng := rand.New(rand.NewSource(42))

	// The delta ledger: two entries (−v to one particle, +v to another)
	// per transaction, magnitudes spread over 2^±100.
	ledger := make([]float64, 0, 2*transactions)
	for i := 0; i < transactions; i++ {
		v := math.Ldexp(1+rng.Float64(), rng.Intn(200)-100)
		ledger = append(ledger, v, -v)
	}
	rng.Shuffle(len(ledger), func(i, j int) { ledger[i], ledger[j] = ledger[j], ledger[i] })
	_ = particles

	var naive float64
	for _, d := range ledger {
		naive += d
	}
	var kahan, comp float64
	for _, d := range ledger {
		y := d - comp
		t := kahan + y
		comp = (t - kahan) - y
		kahan = t
	}
	exact := parsum.Sum(ledger)

	fmt.Printf("ledger entries:        %d (exact net change is 0 by construction)\n", len(ledger))
	fmt.Printf("condition number:      %g\n", parsum.ConditionNumber(ledger))
	fmt.Printf("naive ⊕ tally:         %g   (spurious energy!)\n", naive)
	fmt.Printf("Kahan tally:           %g\n", kahan)
	fmt.Printf("exact superaccumulator: %g\n", exact)

	// Parallel conservation audit: same exact result for every worker
	// count, so a cluster-wide audit is reproducible run to run.
	fmt.Println("\nparallel audit (exact, per worker count):")
	for _, w := range []int{1, 2, 4, 8} {
		s := parsum.SumParallel(ledger, parsum.Options{Workers: w})
		fmt.Printf("  workers=%d  sum=%g\n", w, s)
	}

	// The adaptive (condition-number-sensitive) algorithm certifies the
	// zero with its stopping condition and reports how hard it had to work.
	v, st := parsum.SumAdaptive(ledger, parsum.Options{})
	fmt.Printf("\nadaptive algorithm: sum=%g rounds=%d finalR=%d exact=%v\n",
		v, st.Rounds, st.FinalR, st.Exact)
}
