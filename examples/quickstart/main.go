// Quickstart: exact summation with parsum in five minutes.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"parsum"
)

func main() {
	// Floating-point addition is not associative: the classic failure.
	xs := []float64{1e100, 1, -1e100, 25e-3, 0.5, -0.525}
	var naive float64
	for _, x := range xs {
		naive += x
	}
	fmt.Println("input:          ", xs)
	fmt.Println("naive ⊕ sum:    ", naive)          // 0 — the 1 vanished
	fmt.Println("parsum.Sum:     ", parsum.Sum(xs)) // exactly 1

	// The condition number measures how hard an input is; this one is
	// catastrophic for naive summation.
	fmt.Println("condition number:", parsum.ConditionNumber(xs))

	// Streaming accumulation: feed values as they arrive, round at the end.
	// The exact sum of 10⁷ copies of fl(0.1) is 10⁶ + 5.55e−11, which is
	// within half an ulp of 10⁶ and so correctly rounds to exactly 1e6;
	// the naive running ⊕ tally accumulates 10⁷ rounding errors instead.
	acc := parsum.NewAccumulator()
	var tally float64
	for i := 0; i < 10_000_000; i++ {
		acc.Add(0.1)
		tally += 0.1
	}
	fmt.Println("10M × 0.1 naive: ", tally)       // 999999.9998389754
	fmt.Println("10M × 0.1 exact: ", acc.Round()) // 1e+06

	// Parallel summation is bit-identical for every worker count: exact
	// accumulators make the reduction order irrelevant.
	data := make([]float64, 1_000_000)
	for i := range data {
		data[i] = float64(i%1000) * 1e-3
	}
	s1 := parsum.SumParallel(data, parsum.Options{Workers: 1})
	s8 := parsum.SumParallel(data, parsum.Options{Workers: 8})
	fmt.Println("1 worker:        ", s1)
	fmt.Println("8 workers:       ", s8)
	fmt.Println("bit-identical:   ", s1 == s8)
}
