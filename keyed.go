package parsum

import "parsum/internal/keyed"

// KeyedOptions configures NewKeyed; the zero value is ready to use
// (dense engine, one partition per P). See keyed.Options for field
// documentation.
type KeyedOptions = keyed.Options

// KeyedBatch is one keyed ingestion unit: a key and the values bound
// for its accumulator.
type KeyedBatch = keyed.Batch

// KeySum is one entry of a whole-store keyed snapshot.
type KeySum = keyed.KeySum

// KeyPartial is one key's exact partial sum as an engine wire envelope —
// the JSON-friendly unit of the keyed exchange; see Keyed.ExportPartials.
type KeyPartial = keyed.KeyPartial

// MaxKeyLen bounds key length for every keyed operation.
const MaxKeyLen = keyed.MaxKeyLen

// Keyed is the multi-key exact aggregation store: a concurrent map from
// string keys to exact accumulators, each key's sum as exact as Sum over
// that key's surviving multiset. Because exact summation is a
// commutative group, the per-key partials form a state-based CRDT:
// stores that exchange exported partials (ExportRange/ImportMerge)
// converge to bit-identical per-key sums regardless of exchange order.
// All methods are safe for concurrent use.
type Keyed struct {
	s *keyed.Store
}

// NewKeyed returns an empty keyed store. It errors when opt.Engine is
// unknown, lacks the Streaming and DeterministicParallel capabilities,
// or cannot marshal wire partials (keyed state must be exchangeable).
func NewKeyed(opt KeyedOptions) (*Keyed, error) {
	s, err := keyed.New(opt)
	if err != nil {
		return nil, err
	}
	return &Keyed{s: s}, nil
}

// Engine returns the registry name of the engine backing every key.
func (k *Keyed) Engine() string { return k.s.Engine() }

// Partitions returns the number of key stripes.
func (k *Keyed) Partitions() int { return k.s.Partitions() }

// Invertible reports whether the backing engine supports exact deletion.
func (k *Keyed) Invertible() bool { return k.s.Invertible() }

// Add accumulates every element of xs exactly into key's accumulator.
// An empty xs still registers the key at exact +0. Panics on an empty
// or over-length key (a programming error at this layer).
func (k *Keyed) Add(key string, xs []float64) { k.s.Add(key, xs) }

// Sub deletes every element of xs exactly from key's accumulator — the
// group inverse of Add. Panics when the engine is not Invertible.
func (k *Keyed) Sub(key string, xs []float64) { k.s.Sub(key, xs) }

// Sum returns the correctly rounded exact sum of key's multiset and
// whether the key exists.
func (k *Keyed) Sum(key string) (float64, bool) { return k.s.Sum(key) }

// Len returns the number of live keys.
func (k *Keyed) Len() int { return k.s.Len() }

// Keys returns every live key in sorted order.
func (k *Keyed) Keys() []string { return k.s.Keys() }

// KeysRange returns the sorted live keys x with lo ≤ x < hi; hi == ""
// means no upper bound.
func (k *Keyed) KeysRange(lo, hi string) []string { return k.s.KeysRange(lo, hi) }

// Snapshot returns the whole store as sorted (key, correctly rounded
// exact sum) pairs — element-identical for any two stores holding the
// same per-key multisets.
func (k *Keyed) Snapshot() []KeySum { return k.s.Snapshot() }

// Reset empties the store.
func (k *Keyed) Reset() { k.s.Reset() }

// DeleteRange removes every key x with lo ≤ x < hi (hi == "" unbounded)
// and returns how many were removed — pair with ExportRange to rebalance
// a key range onto another store.
func (k *Keyed) DeleteRange(lo, hi string) int { return k.s.DeleteRange(lo, hi) }

// AddKeyedBatches accumulates a group of keyed batches with one lock
// acquisition per touched partition — the batch.KeyedSink flush entry
// point.
func (k *Keyed) AddKeyedBatches(bs []KeyedBatch) { k.s.AddKeyedBatches(bs) }

// SubKeyedBatches deletes a group of keyed batches, grouped like
// AddKeyedBatches. Panics when the engine is not Invertible.
func (k *Keyed) SubKeyedBatches(bs []KeyedBatch) { k.s.SubKeyedBatches(bs) }

// Merge folds every key of o into k; o is unchanged. Mixing engines
// panics, as in Accumulator.Merge.
func (k *Keyed) Merge(o *Keyed) { k.s.Merge(o.s) }

// ExportAll returns the whole store as one keyed binary envelope — the
// anti-entropy payload a replica ships to a peer's ImportMerge.
func (k *Keyed) ExportAll() ([]byte, error) { return k.s.ExportAll() }

// ExportRange returns every key x with lo ≤ x < hi (hi == "" unbounded)
// as one keyed binary envelope, entries sorted by key; exports of equal
// state are byte-identical.
func (k *Keyed) ExportRange(lo, hi string) ([]byte, error) { return k.s.ExportRange(lo, hi) }

// ImportMerge decodes a keyed envelope and folds every entry in,
// creating missing keys. Malformed or engine-mismatched payloads return
// an error and leave the store bit-for-bit unchanged; the whole envelope
// is validated before anything is applied. Importing the same set of
// exported partials in any order converges to bit-identical per-key
// sums.
func (k *Keyed) ImportMerge(data []byte) error { return k.s.ImportMerge(data) }

// ExportPartials returns the keys in [lo, hi) as per-key engine wire
// envelopes sorted by key — the JSON-friendly form of ExportRange; each
// Blob is an ordinary Accumulator wire partial.
func (k *Keyed) ExportPartials(lo, hi string) ([]KeyPartial, error) {
	return k.s.ExportPartials(lo, hi)
}

// MergeKeyPartials folds a set of per-key wire partials in — the push
// half of the JSON keyed exchange, with the same validate-everything-
// first atomicity as ImportMerge.
func (k *Keyed) MergeKeyPartials(ps []KeyPartial) error { return k.s.MergeKeyPartials(ps) }
