package parsum_test

import (
	"math"
	"testing"

	"parsum"
	"parsum/internal/gen"
	"parsum/internal/oracle"
)

func TestPublicSumAgainstOracle(t *testing.T) {
	for _, d := range gen.AllDists {
		xs := gen.New(gen.Config{Dist: d, N: 5000, Delta: 1000, Seed: 1}).Slice()
		want := oracle.Sum(xs)
		if got := parsum.Sum(xs); got != want {
			t.Fatalf("%v: Sum=%g oracle=%g", d, got, want)
		}
		if got := parsum.SumParallel(xs, parsum.Options{Workers: 4, ChunkSize: 256}); got != want {
			t.Fatalf("%v: SumParallel=%g oracle=%g", d, got, want)
		}
		if got := parsum.IFastSum(xs); got != want {
			t.Fatalf("%v: IFastSum=%g oracle=%g", d, got, want)
		}
		if got, st := parsum.SumAdaptive(xs, parsum.Options{}); !st.Certified || !oracle.Faithful(xs, got) {
			t.Fatalf("%v: SumAdaptive=%g not faithful/certified", d, got)
		}
		res := parsum.MapReduceSum(xs, parsum.MRConfig{Workers: 4, SplitSize: 512})
		if res.Sum != want {
			t.Fatalf("%v: MapReduceSum=%g oracle=%g", d, res.Sum, want)
		}
	}
}

func TestAccumulatorLifecycle(t *testing.T) {
	a := parsum.NewAccumulator()
	a.Add(1e100)
	a.Add(1)
	a.Add(-1e100)
	if got := a.Round(); got != 1 {
		t.Fatalf("Round = %g, want 1", got)
	}
	// Round is non-destructive.
	a.Add(2)
	if got := a.Round(); got != 3 {
		t.Fatalf("Round after more adds = %g, want 3", got)
	}
	b := parsum.NewAccumulator()
	b.Add(0.5)
	a.Merge(b)
	if got := a.Round(); got != 3.5 {
		t.Fatalf("after merge = %g, want 3.5", got)
	}
	// Merge must not consume the source.
	if got := b.Round(); got != 0.5 {
		t.Fatalf("merge source changed: %g", got)
	}
	c := a.Clone()
	a.Reset()
	if got := a.Round(); got != 0 {
		t.Fatalf("after reset = %g", got)
	}
	if got := c.Round(); got != 3.5 {
		t.Fatalf("clone = %g, want 3.5", got)
	}
}

func TestPublicDocExamples(t *testing.T) {
	// The classic motivating example: naive summation loses the 1.
	xs := []float64{1e100, 1, -1e100}
	var naive float64
	for _, x := range xs {
		naive += x
	}
	if naive == 1 {
		t.Skip("platform summed exactly?")
	}
	if got := parsum.Sum(xs); got != 1 {
		t.Fatalf("Sum = %g, want 1", got)
	}
	if got := parsum.ConditionNumber(xs); !(got > 1e99) {
		t.Fatalf("ConditionNumber = %g", got)
	}
	if got := parsum.ConditionNumber(nil); got != 1 {
		t.Fatalf("ConditionNumber(nil) = %g", got)
	}
	if got := parsum.ConditionNumber([]float64{1, -1}); !math.IsInf(got, 1) {
		t.Fatalf("ConditionNumber(zero sum) = %g", got)
	}
}
