package parsum_test

import (
	"math"
	"sync"
	"testing"

	"parsum"
	"parsum/internal/gen"
	"parsum/internal/oracle"
)

func TestPublicSumAgainstOracle(t *testing.T) {
	for _, d := range gen.AllDists {
		xs := gen.New(gen.Config{Dist: d, N: 5000, Delta: 1000, Seed: 1}).Slice()
		want := oracle.Sum(xs)
		if got := parsum.Sum(xs); got != want {
			t.Fatalf("%v: Sum=%g oracle=%g", d, got, want)
		}
		if got := parsum.SumParallel(xs, parsum.Options{Workers: 4, ChunkSize: 256}); got != want {
			t.Fatalf("%v: SumParallel=%g oracle=%g", d, got, want)
		}
		if got := parsum.IFastSum(xs); got != want {
			t.Fatalf("%v: IFastSum=%g oracle=%g", d, got, want)
		}
		if got, st := parsum.SumAdaptive(xs, parsum.Options{}); !st.Certified || !oracle.Faithful(xs, got) {
			t.Fatalf("%v: SumAdaptive=%g not faithful/certified", d, got)
		}
		res := parsum.MapReduceSum(xs, parsum.MRConfig{Workers: 4, SplitSize: 512})
		if res.Sum != want {
			t.Fatalf("%v: MapReduceSum=%g oracle=%g", d, res.Sum, want)
		}
	}
}

func TestAccumulatorLifecycle(t *testing.T) {
	a := parsum.NewAccumulator()
	a.Add(1e100)
	a.Add(1)
	a.Add(-1e100)
	if got := a.Round(); got != 1 {
		t.Fatalf("Round = %g, want 1", got)
	}
	// Round is non-destructive.
	a.Add(2)
	if got := a.Round(); got != 3 {
		t.Fatalf("Round after more adds = %g, want 3", got)
	}
	b := parsum.NewAccumulator()
	b.Add(0.5)
	a.Merge(b)
	if got := a.Round(); got != 3.5 {
		t.Fatalf("after merge = %g, want 3.5", got)
	}
	// Merge must not consume the source.
	if got := b.Round(); got != 0.5 {
		t.Fatalf("merge source changed: %g", got)
	}
	c := a.Clone()
	a.Reset()
	if got := a.Round(); got != 0 {
		t.Fatalf("after reset = %g", got)
	}
	if got := c.Round(); got != 3.5 {
		t.Fatalf("clone = %g, want 3.5", got)
	}
}

func TestEnginesListing(t *testing.T) {
	infos := parsum.Engines()
	if len(infos) < 5 {
		t.Fatalf("Engines() lists %d engines, want >= 5", len(infos))
	}
	byName := map[string]parsum.EngineInfo{}
	for i, e := range infos {
		if i > 0 && infos[i-1].Name >= e.Name {
			t.Fatalf("Engines() not sorted at %q", e.Name)
		}
		if e.Doc == "" {
			t.Fatalf("engine %q has no doc line", e.Name)
		}
		byName[e.Name] = e
	}
	for _, name := range []string{"dense", "sparse", "adaptive", "ifastsum", "small", "large", "naive"} {
		if _, ok := byName[name]; !ok {
			t.Fatalf("engine %q missing from Engines()", name)
		}
	}
	if d := byName["dense"]; !d.Exact || !d.CorrectlyRounded || !d.DeterministicParallel || !d.Streaming {
		t.Fatalf("dense caps wrong: %+v", d)
	}
	if n := byName["naive"]; n.Exact || n.Faithful {
		t.Fatalf("naive caps wrong: %+v", n)
	}
	if a := byName["adaptive"]; !a.Faithful || a.CorrectlyRounded {
		t.Fatalf("adaptive caps wrong: %+v", a)
	}
}

func TestOptionsEngineSelection(t *testing.T) {
	xs := gen.New(gen.Config{Dist: gen.SumZero, N: 20000, Delta: 1200, Seed: 6}).Slice()
	want := oracle.Sum(xs)
	for _, e := range parsum.Engines() {
		if !e.CorrectlyRounded {
			continue
		}
		got := parsum.SumParallel(xs, parsum.Options{Engine: e.Name, Workers: 4, ChunkSize: 512})
		if got != want {
			t.Fatalf("engine %q: SumParallel=%g oracle=%g", e.Name, got, want)
		}
		if got := parsum.SumEngine(e.Name, xs); got != want {
			t.Fatalf("engine %q: SumEngine=%g oracle=%g", e.Name, got, want)
		}
	}
}

func TestNewAccumulatorEngine(t *testing.T) {
	xs := gen.New(gen.Config{Dist: gen.Random, N: 4000, Delta: 900, Seed: 7}).Slice()
	want := oracle.Sum(xs)
	for _, e := range parsum.Engines() {
		if !e.Streaming {
			continue
		}
		acc, err := parsum.NewAccumulatorEngine(e.Name)
		if err != nil {
			t.Fatalf("engine %q: %v", e.Name, err)
		}
		acc.AddSlice(xs[:1000])
		other, _ := parsum.NewAccumulatorEngine(e.Name)
		other.AddSlice(xs[1000:])
		acc.Merge(other)
		if got := acc.Round(); got != want {
			t.Fatalf("engine %q: streamed sum %g, oracle %g", e.Name, got, want)
		}
	}
	if _, err := parsum.NewAccumulatorEngine("no-such-engine"); err == nil {
		t.Fatal("unknown engine: expected error")
	}
	if _, err := parsum.NewAccumulatorEngine("ifastsum"); err == nil {
		t.Fatal("non-streaming engine: expected error")
	}
}

func TestAccumulatorRound32(t *testing.T) {
	// 1 + 2^-25 rounds to 1f in a single binary32 rounding; summing to
	// float64 first then converting would keep the exact value and also
	// land on 1f — use a sum that straddles a binary32 boundary instead:
	// 1 + 2^-24 + 2^-50 must round UP to the next float32 (sticky bit),
	// while float32(float64 value) double-rounds to even and stays at 1.
	a := parsum.NewAccumulator()
	for _, x := range []float64{1, 0x1p-24, 0x1p-50} {
		a.Add(x)
	}
	want := float32(1) + float32(0x1p-23)
	if got := a.Round32(); got != want {
		t.Fatalf("Round32 = %x, want %x (no double rounding)", got, want)
	}
}

func TestPublicDocExamples(t *testing.T) {
	// The classic motivating example: naive summation loses the 1.
	xs := []float64{1e100, 1, -1e100}
	var naive float64
	for _, x := range xs {
		naive += x
	}
	if naive == 1 {
		t.Skip("platform summed exactly?")
	}
	if got := parsum.Sum(xs); got != 1 {
		t.Fatalf("Sum = %g, want 1", got)
	}
	if got := parsum.ConditionNumber(xs); !(got > 1e99) {
		t.Fatalf("ConditionNumber = %g", got)
	}
	if got := parsum.ConditionNumber(nil); got != 1 {
		t.Fatalf("ConditionNumber(nil) = %g", got)
	}
	if got := parsum.ConditionNumber([]float64{1, -1}); !math.IsInf(got, 1) {
		t.Fatalf("ConditionNumber(zero sum) = %g", got)
	}
}

func TestShardedPublicAPI(t *testing.T) {
	xs := gen.New(gen.Config{Dist: gen.Random, N: 12000, Delta: 1200, Seed: 19}).Slice()
	want := oracle.Sum(xs)

	s, err := parsum.NewSharded(parsum.ShardedOptions{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wr := s.Writer()
			for i := w; i < len(xs); i += 8 {
				if i%2 == 0 {
					wr.Add(xs[i])
				} else {
					s.Add(xs[i])
				}
			}
		}(w)
	}
	wg.Wait()
	if got := s.Sum(); got != want {
		t.Fatalf("Sharded.Sum=%g oracle=%g", got, want)
	}
	if got := s.Snapshot(); got != want {
		t.Fatalf("Snapshot after Sum diverged: %g", got)
	}

	// Merge two sharded accumulators built from disjoint halves.
	a, _ := parsum.NewSharded(parsum.ShardedOptions{Engine: "sparse"})
	b, _ := parsum.NewSharded(parsum.ShardedOptions{Engine: "sparse"})
	a.AddBatch(xs[:len(xs)/2])
	b.AddBatch(xs[len(xs)/2:])
	a.Merge(b)
	if got := a.Sum(); got != want {
		t.Fatalf("merged Sharded.Sum=%g oracle=%g", got, want)
	}

	a.Reset()
	if got := a.Sum(); got != 0 {
		t.Fatalf("Sum after Reset = %g", got)
	}

	if _, err := parsum.NewSharded(parsum.ShardedOptions{Engine: "pairwise"}); err == nil {
		t.Fatal("NewSharded accepted a non-deterministic engine")
	}
	if _, err := parsum.NewSharded(parsum.ShardedOptions{Engine: "nope"}); err == nil {
		t.Fatal("NewSharded accepted an unknown engine")
	}
}
